"""Project-wide call graph for interprocedural parmlint rules.

Per-file rules (PR 2) cannot answer the question the warm-worker-pool
roadmap item depends on: *"is this function reachable from a worker and
does anything it transitively calls mutate shared state?"*  This module
grows parmlint a whole-program view:

* **Indexing** — every module-level function, class method, nested
  ``def`` and ``lambda`` becomes a :class:`CallGraphNode` with a stable
  qualified name (``repro.exp.routing_sweep.run_point``,
  ``repro.harness.supervisor.CellExecutor.run_cell``,
  ``pkg.mod.outer.<locals>.inner``).
* **Alias-aware call resolution** — call edges are resolved through
  ``import``/``from``/``as`` aliases (absolute and relative), module
  attribute chains (``parallel.map_tasks``), ``self`` method calls
  (including project base classes and ``super()``), locally inferred
  variable types (``engine = ArrayNocEngine(...); engine.run(...)``),
  instance-attribute types assigned in any method of a class, and
  module-level function aliases (``g = f``).
* **Conservative unknown-call handling** — calls that cannot be
  resolved (dynamic dispatch, external libraries, callable parameters)
  are *recorded* on the node in ``unresolved`` rather than dropped, so
  rules can choose how pessimistic to be.  Defining a nested function
  adds a parent edge: a reachable function makes its closures reachable
  (the typical escape route into worker processes).
* **Shipment tracking** — call sites that hand a callable to the
  process-pool layer (``map_tasks``/``run_cells``/
  ``CampaignSupervisor(cell_runner=...)``) are recorded as
  :class:`Shipment` entries with the resolved target (or the fact that
  it could not be resolved, or that it is an unpicklable
  lambda/closure).  The worker-reachability rule turns these into its
  root set.
* **On-disk caching** — the graph serialises to a deterministic JSON
  artifact keyed by the SHA-256 of every source file, so repeated lint
  runs skip the resolution pass.  A corrupt or stale artifact is a
  cache miss, never an error, and a cold rebuild is byte-identical to
  the cached artifact (pinned in ``tests/analysis/test_callgraph.py``).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import ModuleInfo

#: Schema name / version of the cached call-graph artifact.  Bump the
#: version whenever node structure or resolution semantics change: the
#: key changes with it, so stale artifacts simply miss.
CALLGRAPH_SCHEMA = "parmlint-callgraph"
CALLGRAPH_VERSION = 1

#: Builtin callables that never resolve to project code; calls to them
#: are not worth recording as unresolved (pure noise for every rule).
_BUILTINS = frozenset(
    {
        "abs", "all", "any", "bool", "bytearray", "bytes", "callable",
        "chr", "classmethod", "complex", "delattr", "dict", "divmod",
        "enumerate", "filter", "float", "format", "frozenset", "getattr",
        "hasattr", "hash", "id", "int", "isinstance", "issubclass",
        "iter", "len", "list", "map", "max", "memoryview", "min", "next",
        "object", "open", "ord", "pow", "print", "property", "range",
        "repr", "reversed", "round", "set", "setattr", "slice", "sorted",
        "staticmethod", "str", "sum", "super", "tuple", "type", "vars",
        "zip",
        # Exception constructors show up constantly in raise statements.
        "ArithmeticError", "AssertionError", "AttributeError",
        "BaseException", "Exception", "IndexError", "KeyError",
        "KeyboardInterrupt", "LookupError", "NotImplementedError",
        "OSError", "OverflowError", "RuntimeError", "StopIteration",
        "SystemExit", "TypeError", "ValueError", "ZeroDivisionError",
    }
)

#: Pool-shipment sinks: callee name -> how to find the shipped callable
#: in the call's arguments (positional index, keyword name).
_SHIPMENT_SINKS: Dict[str, Tuple[int, str]] = {
    "map_tasks": (0, "fn"),
    "run_cells": (3, "cell_runner"),
    "CampaignSupervisor": (3, "cell_runner"),
}


@dataclass(frozen=True)
class CallGraphNode:
    """One callable in the project, with its resolved call edges.

    Attributes:
        qname: Qualified name (``pkg.mod.fn``, ``pkg.mod.Cls.m``,
            ``pkg.mod.fn.<locals>.inner``, ``...<locals>.<lambda@12>``).
        module: Dotted module name the callable lives in.
        path: Module path, POSIX-style and relative to the lint root.
        line: 1-based line of the ``def``/``lambda``.
        kind: ``"function"``, ``"method"``, ``"nested"`` or ``"lambda"``.
        calls: Resolved project-internal callee qnames, sorted unique.
            Includes an implicit edge to every nested def/lambda the
            body defines (definition makes the closure escape-able).
        unresolved: Calls that could not be resolved, sorted unique —
            either a dotted external name (``numpy.sqrt``) or a leading
            ``.`` plus method name (``.run``) for unknown receivers.
    """

    qname: str
    module: str
    path: str
    line: int
    kind: str
    calls: Tuple[str, ...]
    unresolved: Tuple[str, ...]

    def to_json(self) -> Dict[str, object]:
        return {
            "qname": self.qname,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "kind": self.kind,
            "calls": list(self.calls),
            "unresolved": list(self.unresolved),
        }

    @classmethod
    def from_json(cls, record: Dict[str, object]) -> "CallGraphNode":
        return cls(
            qname=str(record["qname"]),
            module=str(record["module"]),
            path=str(record["path"]),
            line=int(record["line"]),  # type: ignore[arg-type]
            kind=str(record["kind"]),
            calls=tuple(str(c) for c in record["calls"]),  # type: ignore[union-attr]
            unresolved=tuple(str(u) for u in record["unresolved"]),  # type: ignore[union-attr]
        )


@dataclass(frozen=True)
class Shipment:
    """One call site that hands a callable to the worker-pool layer.

    Attributes:
        path: Call-site module path (relative, POSIX).
        line: Call-site line.
        sink: The pool entry point (``map_tasks``, ``run_cells`` or
            ``CampaignSupervisor``).
        target: Resolved qname of the shipped callable, or ``None``
            when it cannot be resolved statically (a variable, an
            attribute of unknown type, ...).
        arg: Compact source form of the callable expression, for
            messages.
        unpicklable: True when the expression is a lambda or a nested
            (closure) function — unshippable to ``spawn`` workers.
    """

    path: str
    line: int
    sink: str
    target: Optional[str]
    arg: str
    unpicklable: bool

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "sink": self.sink,
            "target": self.target,
            "arg": self.arg,
            "unpicklable": self.unpicklable,
        }

    @classmethod
    def from_json(cls, record: Dict[str, object]) -> "Shipment":
        target = record["target"]
        return cls(
            path=str(record["path"]),
            line=int(record["line"]),  # type: ignore[arg-type]
            sink=str(record["sink"]),
            target=None if target is None else str(target),
            arg=str(record["arg"]),
            unpicklable=bool(record["unpicklable"]),
        )


class CallGraph:
    """The project call graph: nodes, shipment sites, reachability."""

    def __init__(
        self,
        nodes: Iterable[CallGraphNode],
        shipments: Iterable[Shipment] = (),
    ) -> None:
        self._nodes: Dict[str, CallGraphNode] = {
            node.qname: node
            for node in sorted(nodes, key=lambda n: n.qname)
        }
        self._shipments: Tuple[Shipment, ...] = tuple(
            sorted(
                shipments,
                key=lambda s: (s.path, s.line, s.sink, s.arg),
            )
        )

    @property
    def nodes(self) -> Dict[str, CallGraphNode]:
        return dict(self._nodes)

    @property
    def shipments(self) -> Tuple[Shipment, ...]:
        return self._shipments

    def node(self, qname: str) -> Optional[CallGraphNode]:
        return self._nodes.get(qname)

    def resolve_callable(self, dotted: str) -> Optional[str]:
        """Map a dotted name to a node qname (a class to its __init__)."""
        if dotted in self._nodes:
            return dotted
        init = f"{dotted}.__init__"
        if init in self._nodes:
            return init
        return None

    def reachable(
        self, roots: Iterable[str]
    ) -> Dict[str, Tuple[str, ...]]:
        """BFS closure from ``roots``: qname -> path from its root.

        The returned path (``(root, ..., qname)``) is the first one
        found by a deterministic BFS over sorted roots and sorted call
        edges, so messages built from it are stable across runs.
        """
        paths: Dict[str, Tuple[str, ...]] = {}
        frontier: List[str] = []
        for root in sorted(set(roots)):
            if root in self._nodes and root not in paths:
                paths[root] = (root,)
                frontier.append(root)
        while frontier:
            nxt: List[str] = []
            for qname in frontier:
                for callee in self._nodes[qname].calls:
                    if callee in self._nodes and callee not in paths:
                        paths[callee] = paths[qname] + (callee,)
                        nxt.append(callee)
            frontier = sorted(nxt)
        return paths

    def to_json(self, key: str) -> Dict[str, object]:
        return {
            "schema": CALLGRAPH_SCHEMA,
            "version": CALLGRAPH_VERSION,
            "key": key,
            "nodes": [
                self._nodes[q].to_json() for q in sorted(self._nodes)
            ],
            "shipments": [s.to_json() for s in self._shipments],
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "CallGraph":
        if payload.get("schema") != CALLGRAPH_SCHEMA:
            raise ValueError("not a call-graph artifact")
        if payload.get("version") != CALLGRAPH_VERSION:
            raise ValueError("call-graph artifact version mismatch")
        return cls(
            nodes=[
                CallGraphNode.from_json(r)
                for r in payload["nodes"]  # type: ignore[union-attr]
            ],
            shipments=[
                Shipment.from_json(r)
                for r in payload.get("shipments", [])  # type: ignore[union-attr]
            ],
        )


# ----------------------------------------------------------------------
# Indexing (pass A)
# ----------------------------------------------------------------------


@dataclass
class _ClassIndex:
    qname: str
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qname
    bases: List[str] = field(default_factory=list)  # local base names
    #: Instance-attribute types: attr -> class qname (from `self.x = Cls()`).
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class _ModuleIndex:
    info: ModuleInfo
    package: str  # package the module lives in (itself for __init__)
    defs: Dict[str, str] = field(default_factory=dict)  # name -> qname
    classes: Dict[str, _ClassIndex] = field(default_factory=dict)
    imports: Dict[str, str] = field(default_factory=dict)  # local -> dotted
    aliases: Dict[str, str] = field(default_factory=dict)  # g = f


def _module_package(info: ModuleInfo) -> str:
    if info.path.name == "__init__.py":
        return info.module
    head, _, _ = info.module.rpartition(".")
    return head


def _relative_base(package: str, level: int) -> str:
    """Package that a ``from ...x import y`` (level dots) resolves in."""
    parts = package.split(".") if package else []
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    return ".".join(parts)


def _index_module(info: ModuleInfo) -> _ModuleIndex:
    idx = _ModuleIndex(info=info, package=_module_package(info))
    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            idx.defs[node.name] = f"{info.module}.{node.name}"
        elif isinstance(node, ast.ClassDef):
            cls = _ClassIndex(qname=f"{info.module}.{node.name}")
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[item.name] = f"{cls.qname}.{item.name}"
            for base in node.bases:
                if isinstance(base, ast.Name):
                    cls.bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    cls.bases.append(base.attr)
            idx.classes[node.name] = cls
        elif isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                idx.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.names and node.names[0].name == "*":
                continue
            if node.level == 0:
                base = node.module or ""
            else:
                rel = _relative_base(idx.package, node.level)
                base = f"{rel}.{node.module}" if node.module else rel
            for alias in node.names:
                local = alias.asname or alias.name
                idx.imports[local] = f"{base}.{alias.name}" if base else alias.name
    # Module-level `g = f` aliases of local defs (second sweep so the
    # alias works regardless of statement order).
    for node in info.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Name)
            and node.value.id in idx.defs
        ):
            idx.aliases[node.targets[0].id] = idx.defs[node.value.id]
    return idx


# ----------------------------------------------------------------------
# Resolution (pass B)
# ----------------------------------------------------------------------


class _Resolver:
    """Resolves dotted names and call expressions across the project."""

    def __init__(self, indexes: Dict[str, _ModuleIndex]):
        self._by_module = indexes
        #: Every known symbol qname -> kind ("func" | "class" | "method").
        self._symbols: Dict[str, str] = {}
        for mod_idx in indexes.values():
            for qname in mod_idx.defs.values():
                self._symbols[qname] = "func"
            for cls in mod_idx.classes.values():
                self._symbols[cls.qname] = "class"
                for m_qname in cls.methods.values():
                    self._symbols[m_qname] = "method"
        #: Project root packages, to tell unresolved-internal from external.
        self._roots = {m.split(".")[0] for m in indexes}

    def is_project_module(self, dotted: str) -> bool:
        return dotted in self._by_module

    def class_index(self, class_qname: str) -> Optional[_ClassIndex]:
        module, _, name = class_qname.rpartition(".")
        mod_idx = self._by_module.get(module)
        if mod_idx is None:
            return None
        return mod_idx.classes.get(name)

    def resolve_dotted(self, dotted: str) -> Optional[str]:
        """Symbol qname for a dotted project name, else None.

        A class resolves to itself (callers map it to ``__init__`` when
        they need an executable node).  Handles symbols re-exported at
        most one attribute deep (``pkg.mod.Cls.method``).
        """
        if dotted in self._symbols:
            return dotted
        # `from pkg import mod` then `mod.Cls.method`: the chain walks
        # through a class: pkg.mod.Cls resolved + trailing method.
        head, _, tail = dotted.rpartition(".")
        if head in self._symbols and self._symbols[head] == "class":
            cls = self.class_index(head)
            if cls is not None and tail in cls.methods:
                return cls.methods[tail]
        return None

    def is_external(self, dotted: str) -> bool:
        return dotted.split(".")[0] not in self._roots

    def method_on(self, class_qname: str, name: str) -> Optional[str]:
        """Look up ``name`` on a class or (project) base classes."""
        seen: Set[str] = set()
        stack = [class_qname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.class_index(current)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            module, _, _ = current.rpartition(".")
            mod_idx = self._by_module.get(module)
            for base in cls.bases:
                base_qname = None
                if mod_idx is not None:
                    if base in mod_idx.classes:
                        base_qname = mod_idx.classes[base].qname
                    elif base in mod_idx.imports:
                        resolved = self.resolve_dotted(mod_idx.imports[base])
                        if resolved and self._symbols.get(resolved) == "class":
                            base_qname = resolved
                if base_qname is not None:
                    stack.append(base_qname)
        return None


def _attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _FunctionVisitor:
    """Resolves the calls of one function body (not nested defs)."""

    def __init__(
        self,
        resolver: _Resolver,
        mod_idx: _ModuleIndex,
        class_qname: Optional[str],
        fn: ast.AST,
    ) -> None:
        self._resolver = resolver
        self._mod = mod_idx
        self._class = class_qname
        self._fn = fn
        self.calls: Set[str] = set()
        self.unresolved: Set[str] = set()
        self.shipments: List[Shipment] = []
        self._nested_names: Set[str] = set()
        self._var_types: Dict[str, str] = {}
        self._var_types.update(self._infer_locals())

    # -- local type inference ------------------------------------------

    def _class_of_call(self, call: ast.Call) -> Optional[str]:
        """Class qname when ``call`` is a direct project-class construction."""
        target = self._resolve_callee_symbol(call.func)
        if target is not None and self._resolver.class_index(target):
            return target
        return None

    def _infer_locals(self) -> Dict[str, str]:
        """Map local names to class qnames from ``x = Cls(...)`` binds."""
        out: Dict[str, str] = {}
        for node in self._own_nodes():
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                cls = self._class_of_call(node.value)
                if cls is not None:
                    out[node.targets[0].id] = cls
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._nested_names.add(node.name)
        return out

    def _own_nodes(self) -> Iterable[ast.AST]:
        """Walk the body without descending into nested defs/lambdas."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(self._fn))
        while stack:
            node = stack.pop(0)
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    # -- symbol resolution ---------------------------------------------

    def _resolve_name(self, name: str) -> Optional[str]:
        """Resolve a bare name in this function's scope to a symbol."""
        if name in self._nested_names and not isinstance(
            self._fn, ast.Module
        ):
            qname_base = _node_qname_base(self._fn, self._class, self._mod)
            return f"{qname_base}.<locals>.{name}"
        if name in self._mod.defs:
            return self._mod.defs[name]
        if name in self._mod.classes:
            return self._mod.classes[name].qname
        if name in self._mod.aliases:
            return self._mod.aliases[name]
        if name in self._mod.imports:
            return self._resolver.resolve_dotted(self._mod.imports[name])
        return None

    def _resolve_callee_symbol(self, func: ast.AST) -> Optional[str]:
        """Resolve a call's func expression to a symbol qname."""
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id)
        chain = _attr_chain(func)
        if chain is None:
            # super().m(...): dispatch into the first project base.
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
                and self._class is not None
            ):
                cls = self._resolver.class_index(self._class)
                if cls is not None:
                    module, _, _ = self._class.rpartition(".")
                    mod_idx = self._resolver._by_module.get(module)
                    for base in cls.bases:
                        base_q = None
                        if mod_idx is not None and base in mod_idx.classes:
                            base_q = mod_idx.classes[base].qname
                        elif mod_idx is not None and base in mod_idx.imports:
                            base_q = self._resolver.resolve_dotted(
                                mod_idx.imports[base]
                            )
                        if base_q is not None:
                            found = self._resolver.method_on(base_q, func.attr)
                            if found is not None:
                                return found
            return None
        head = chain[0]
        if head == "self" and self._class is not None:
            if len(chain) == 2:
                return self._resolver.method_on(self._class, chain[1])
            if len(chain) == 3:
                cls = self._resolver.class_index(self._class)
                if cls is not None and chain[1] in cls.attr_types:
                    return self._resolver.method_on(
                        cls.attr_types[chain[1]], chain[2]
                    )
            return None
        if head in self._var_types and len(chain) == 2:
            return self._resolver.method_on(self._var_types[head], chain[1])
        if head in self._mod.imports:
            dotted = self._mod.imports[head] + "." + ".".join(chain[1:])
            if self._resolver.is_external(dotted):
                return None
            return self._resolver.resolve_dotted(dotted)
        if head in self._mod.classes and len(chain) == 2:
            # ClassName.method(instance, ...) — rare but cheap to cover.
            return self._resolver.method_on(
                self._mod.classes[head].qname, chain[1]
            )
        return None

    # -- call recording ------------------------------------------------

    def _record_unresolved(self, func: ast.AST) -> None:
        if isinstance(func, ast.Name):
            if func.id not in _BUILTINS:
                self.unresolved.add(func.id)
            return
        chain = _attr_chain(func)
        if chain is None:
            if isinstance(func, ast.Attribute):
                self.unresolved.add(f".{func.attr}")
            return
        head = chain[0]
        if head in self._mod.imports:
            dotted = self._mod.imports[head] + "." + ".".join(chain[1:])
            self.unresolved.add(dotted)
        else:
            self.unresolved.add(f".{chain[-1]}")

    def _sink_of(self, func: ast.AST, symbol: Optional[str]) -> Optional[str]:
        """Shipment-sink name when this call targets the pool layer."""
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        else:
            chain = _attr_chain(func)
            if chain is not None:
                name = chain[-1]
            elif isinstance(func, ast.Attribute):
                name = func.attr
        if symbol is not None:
            tail = symbol.rsplit(".", 1)[-1]
            if tail in _SHIPMENT_SINKS:
                return tail
        if name in _SHIPMENT_SINKS:
            return name
        return None

    def _record_shipment(self, call: ast.Call, sink: str) -> None:
        pos, kw = _SHIPMENT_SINKS[sink]
        arg: Optional[ast.AST] = None
        for keyword in call.keywords:
            if keyword.arg == kw:
                arg = keyword.value
                break
        if arg is None and len(call.args) > pos:
            arg = call.args[pos]
        if arg is None or (
            isinstance(arg, ast.Constant) and arg.value is None
        ):
            return
        unpicklable = isinstance(arg, ast.Lambda) or (
            isinstance(arg, ast.Name) and arg.id in self._nested_names
        )
        target: Optional[str] = None
        if not unpicklable:
            target = self._resolve_callee_symbol(arg)
            if target is not None:
                resolved_node = self._resolver.resolve_dotted(target)
                if resolved_node is None:
                    target = None
        arg_src = ast.unparse(arg)
        self.shipments.append(
            Shipment(
                path=self._mod.info.rel,
                line=call.lineno,
                sink=sink,
                target=target,
                arg=arg_src,
                unpicklable=unpicklable,
            )
        )

    def visit(self) -> None:
        for node in self._own_nodes():
            if not isinstance(node, ast.Call):
                continue
            symbol = self._resolve_callee_symbol(node.func)
            sink = self._sink_of(node.func, symbol)
            if sink is not None:
                self._record_shipment(node, sink)
            if symbol is None:
                self._record_unresolved(node.func)
                continue
            kind = self._resolver._symbols.get(symbol)
            if kind == "class":
                cls = self._resolver.class_index(symbol)
                init = cls.methods.get("__init__") if cls else None
                if init is not None:
                    self.calls.add(init)
                continue
            if kind is None:
                # Nested-def qname (not in the symbol table): keep it.
                if ".<locals>." not in symbol:
                    continue
            self.calls.add(symbol)


def _node_qname_base(
    fn: ast.AST, class_qname: Optional[str], mod_idx: _ModuleIndex
) -> str:
    name = getattr(fn, "name", None) or f"<lambda@{fn.lineno}>"
    if class_qname is not None:
        return f"{class_qname}.{name}"
    return f"{mod_idx.info.module}.{name}"


def _collect_attr_types(
    resolver: _Resolver, indexes: Dict[str, _ModuleIndex]
) -> None:
    """Fill each class's ``attr_types`` from ``self.x = Cls(...)`` binds."""
    for module in sorted(indexes):
        mod_idx = indexes[module]
        for node in mod_idx.info.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            cls = mod_idx.classes[node.name]
            helper = _FunctionVisitor(resolver, mod_idx, cls.qname, node)
            for stmt in ast.walk(node):
                if not isinstance(stmt, ast.Assign):
                    continue
                if len(stmt.targets) != 1 or not isinstance(
                    stmt.value, ast.Call
                ):
                    continue
                chain = _attr_chain(stmt.targets[0])
                if chain is None or len(chain) != 2 or chain[0] != "self":
                    continue
                typed = helper._class_of_call(stmt.value)
                if typed is not None:
                    cls.attr_types[chain[1]] = typed


# ----------------------------------------------------------------------
# Graph construction
# ----------------------------------------------------------------------


def _walk_callables(
    mod_idx: _ModuleIndex,
) -> Iterable[Tuple[str, Optional[str], str, ast.AST]]:
    """Yield ``(qname, class_qname, kind, node)`` for every callable.

    Nested defs and lambdas get ``<locals>``-style qnames under their
    enclosing callable, matching CPython's ``__qualname__`` shape.
    """

    def walk(
        node: ast.AST, prefix: str, class_qname: Optional[str], top: bool
    ) -> Iterable[Tuple[str, Optional[str], str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{prefix}.{child.name}"
                kind = (
                    "method"
                    if class_qname is not None and top
                    else ("function" if top else "nested")
                )
                yield (qname, class_qname, kind, child)
                yield from walk(child, f"{qname}.<locals>", class_qname, False)
            elif isinstance(child, ast.Lambda):
                qname = f"{prefix}.<lambda@{child.lineno}>"
                yield (qname, class_qname, "lambda", child)
                yield from walk(child, f"{qname}.<locals>", class_qname, False)
            elif isinstance(child, ast.ClassDef) and top:
                cls_qname = f"{prefix}.{child.name}"
                yield from walk(child, cls_qname, cls_qname, True)
            else:
                yield from walk(child, prefix, class_qname, top)

    yield from walk(mod_idx.info.tree, mod_idx.info.module, None, True)


def build_graph(modules: Sequence[ModuleInfo]) -> CallGraph:
    """Build the project call graph from parsed modules (two passes)."""
    indexes: Dict[str, _ModuleIndex] = {}
    for info in modules:
        indexes[info.module] = _index_module(info)
    resolver = _Resolver(indexes)
    _collect_attr_types(resolver, indexes)

    nodes: List[CallGraphNode] = []
    shipments: List[Shipment] = []
    for module in sorted(indexes):
        mod_idx = indexes[module]
        for qname, class_qname, kind, fn in _walk_callables(mod_idx):
            visitor = _FunctionVisitor(resolver, mod_idx, class_qname, fn)
            visitor.visit()
            calls = set(visitor.calls)
            # Defining a nested callable is an edge: if this function is
            # reachable, its closures can escape into worker processes.
            for child in ast.iter_child_nodes(fn):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    calls.add(f"{qname}.<locals>.{child.name}")
                elif isinstance(child, ast.Lambda):
                    calls.add(f"{qname}.<lambda@{child.lineno}>")
            for child in ast.walk(fn):
                if isinstance(child, ast.Lambda) and child is not fn:
                    calls.add(f"{qname}.<lambda@{child.lineno}>")
            nodes.append(
                CallGraphNode(
                    qname=qname,
                    module=module,
                    path=mod_idx.info.rel,
                    line=fn.lineno,
                    kind=kind,
                    calls=tuple(sorted(calls)),
                    unresolved=tuple(sorted(visitor.unresolved)),
                )
            )
            shipments.extend(visitor.shipments)
        # Module top level also ships callables (rare, but cheap).
        top = _FunctionVisitor(resolver, mod_idx, None, mod_idx.info.tree)
        top.visit()
        shipments.extend(top.shipments)
    return CallGraph(nodes=nodes, shipments=shipments)


# ----------------------------------------------------------------------
# Cache artifact
# ----------------------------------------------------------------------


def source_key(modules: Sequence[ModuleInfo]) -> str:
    """Content hash over every module source: the cache artifact key."""
    digest = hashlib.sha256()
    digest.update(f"{CALLGRAPH_SCHEMA}:{CALLGRAPH_VERSION}".encode("utf-8"))
    for info in sorted(modules, key=lambda m: m.rel):
        body = hashlib.sha256(info.source.encode("utf-8")).hexdigest()
        digest.update(f"\n{info.rel}\n{body}".encode("utf-8"))
    return digest.hexdigest()


def graph_to_bytes(graph: CallGraph, key: str) -> bytes:
    """Canonical serialized form — deterministic byte-for-byte."""
    return (
        json.dumps(
            graph.to_json(key), indent=2, sort_keys=True, ensure_ascii=True
        )
        + "\n"
    ).encode("utf-8")


def project_graph(
    modules: Sequence[ModuleInfo], cache_dir: Optional[Path] = None
) -> CallGraph:
    """Return the call graph, via the on-disk cache when one is given.

    The artifact is keyed by the content hash of every source file, so
    any edit misses and triggers a cold rebuild.  A corrupt, truncated,
    or stale-schema artifact is also a miss, never an error; the fresh
    build overwrites it atomically.  Cold and warm runs yield the same
    graph (byte-identical serializations — pinned in tests).
    """
    key = source_key(modules)
    artifact: Optional[Path] = None
    if cache_dir is not None:
        artifact = Path(cache_dir) / f"callgraph-{key[:16]}.json"
        try:
            payload = json.loads(artifact.read_text(encoding="utf-8"))
            if payload.get("key") == key:
                return CallGraph.from_json(payload)
        except (  # parmlint: ok[silent-except] - corrupt cache == miss
            FileNotFoundError,
            KeyError,
            TypeError,
            ValueError,
            UnicodeDecodeError,
        ):
            # A damaged or stale artifact is a miss, never an error:
            # fall through to a cold rebuild which overwrites it.
            pass
    graph = build_graph(modules)
    if artifact is not None:
        artifact.parent.mkdir(parents=True, exist_ok=True)
        tmp = artifact.with_suffix(".tmp")
        tmp.write_bytes(graph_to_bytes(graph, key))
        tmp.replace(artifact)
    return graph


def index_functions(
    modules: Sequence[ModuleInfo],
) -> Dict[str, Tuple[ModuleInfo, ast.AST]]:
    """Map every callable qname to its ``(ModuleInfo, ast node)``.

    Rebuilt fresh each run (never cached): rules need live AST nodes,
    which do not survive serialization.
    """
    out: Dict[str, Tuple[ModuleInfo, ast.AST]] = {}
    for info in sorted(modules, key=lambda m: m.rel):
        mod_idx = _index_module(info)
        for qname, _class_qname, _kind, fn in _walk_callables(mod_idx):
            out[qname] = (info, fn)
    return out
