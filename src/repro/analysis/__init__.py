"""parmlint: AST-based determinism & invariant linter for the PARM repro.

The PARM evaluation rests on reproducible simulation: fault campaigns
promise bit-identical results at zero intensity, and the PDN/NoC/runtime
stack encodes physical invariants (seeded RNG streams, SI-unit fields,
finite node voltages).  ``repro.analysis`` enforces those invariants
statically, so every future perf/scaling PR is checked automatically.

Public surface:

* :class:`~repro.analysis.findings.Finding` — one rule violation.
* :class:`~repro.analysis.engine.LintEngine` — walks a source tree and
  applies the registered rules.
* :data:`~repro.analysis.rules.ALL_RULES` — the default rule set.
* :func:`~repro.analysis.cli.main` — the ``python -m repro lint`` entry.

See ``docs/lint.md`` for the rule catalogue and pragma syntax.
"""

from __future__ import annotations

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.engine import LintEngine, LintResult, ModuleInfo, Rule
from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULES, default_rules

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintEngine",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "default_rules",
    "load_baseline",
    "write_baseline",
]
