"""Rule ``mutable-default``: no mutable default argument values.

A mutable default (``def f(xs=[])``) is evaluated once at function
definition and then *shared across calls* — in a simulator this couples
independent runs through hidden state, the exact failure mode the
determinism rules exist to prevent.  Use ``None`` + an in-body default,
or ``dataclasses.field(default_factory=...)``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding
from repro.analysis.rules._util import attr_chain

#: Constructor names whose call results are mutable.
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"}
)


def _is_mutable(node: ast.AST) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        chain = attr_chain(node.func)
        return chain is not None and chain[-1] in _MUTABLE_CALLS
    return False


class MutableDefaultRule(Rule):
    id = "mutable-default"
    description = "no list/dict/set (or similar) default argument values"

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = [
                *node.args.defaults,
                *(d for d in node.args.kw_defaults if d is not None),
            ]
            for default in defaults:
                if _is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield Finding(
                        rule=self.id,
                        path=mod.rel,
                        line=default.lineno,
                        message=(
                            f"mutable default `{ast.unparse(default)}` in "
                            f"`{name}` is shared across calls; default to "
                            "None and construct inside the body"
                        ),
                    )
