"""Rule ``worker-safety``: the worker-reachable closure must be pure.

The warm-worker-pool roadmap item moves cell execution into long-lived
``spawn`` processes.  Anything a worker-shipped callable *transitively*
calls must therefore avoid the three classic byte-identity killers:

* **module-global mutation** — ``global X`` stores, ``mod.X = v``
  rebinds, ``CACHE[k] = v`` subscript stores on module-level
  containers, and mutating method calls (``append``/``update``/...)
  on module-level names.  Each worker has its own copy of module
  state, so such writes silently diverge between serial and parallel
  runs (and between workers).
* **wall-clock / environment reads** — ``time.time()``,
  ``datetime.now()``, ``os.getenv``/``os.environ``, ``os.urandom``:
  values that differ per host, per run, or per worker.
* **unpicklable shipments** — lambdas and closures cannot cross a
  ``spawn`` boundary at all.

Roots come from two places: every ``WORKER_ROOTS`` registry assignment
(a module-level tuple of dotted-name strings; ``repro.perf.parallel``
owns the canonical one) and every call site that ships a callable into
the pool layer (``map_tasks``/``run_cells``/``CampaignSupervisor``).
A shipment whose target resolves but is *not* registered is itself a
finding — the registry is what keeps the analyzer honest as new
fan-outs appear.

Findings land at the *violation site* (mutation line, clock-read line),
never the root, so a ``# parmlint: ok[worker-safety]`` pragma there
suppresses the finding even when the reachability path runs through
three modules — and the baseline fingerprint (rule, path, line) stays
stable across runs because the BFS and all message paths are
deterministic.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import ModuleInfo, ProjectContext, ProjectRule
from repro.analysis.findings import Finding
from repro.analysis.rules._util import attr_chain, module_aliases

#: Name of the root-registry constant the analyzer consumes.
REGISTRY_NAME = "WORKER_ROOTS"

#: Container methods that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "add", "append", "clear", "discard", "extend", "insert", "pop",
        "popitem", "remove", "reverse", "setdefault", "sort", "update",
    }
)

#: ``time`` module functions that read the wall clock (or block on it).
_TIME_FUNCS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns", "sleep",
    }
)

#: ``datetime``/``date`` constructors that read the wall clock.
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: ``os`` functions that read per-host environment or OS entropy.
_OS_FUNCS = frozenset({"getenv", "putenv", "urandom"})


def parse_worker_roots(mod: ModuleInfo) -> List[Tuple[str, int]]:
    """``(dotted_name, lineno)`` for each WORKER_ROOTS entry in a module.

    The registry must be a module-level assignment of a tuple/list of
    string literals so the analyzer can read it without importing
    anything.
    """
    out: List[Tuple[str, int]] = []
    for node in mod.tree.body:
        targets: List[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == REGISTRY_NAME
            for t in targets
        ):
            continue
        if isinstance(value, (ast.Tuple, ast.List)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    out.append((element.value, element.lineno))
    return out


class _BodyScan:
    """Scans one callable's own body (nested defs excluded) for hazards.

    Nested defs/lambdas are separate call-graph nodes reached through
    their parent edge, so they get their own scan.
    """

    def __init__(self, mod: ModuleInfo, fn: ast.AST):
        self.mod = mod
        self.fn = fn
        self.hazards: List[Tuple[int, str]] = []
        self._module_names = self._collect_module_names()
        self._import_aliases = self._collect_import_aliases()
        self._time_aliases = module_aliases(mod.tree, "time")
        self._datetime_aliases = module_aliases(mod.tree, "datetime") | (
            module_aliases(mod.tree, "datetime.datetime")
        )
        self._os_aliases = module_aliases(mod.tree, "os")
        self._globals: Set[str] = set()
        self._locals = self._collect_locals()

    def _collect_module_names(self) -> Set[str]:
        names: Set[str] = set()
        for node in self.mod.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
        return names

    def _collect_import_aliases(self) -> Set[str]:
        aliases: Set[str] = set()
        for node in ast.walk(self.mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    aliases.add(alias.asname or alias.name.split(".")[0])
        return aliases

    def _own_nodes(self) -> Iterable[ast.AST]:
        stack: List[ast.AST] = list(ast.iter_child_nodes(self.fn))
        while stack:
            node = stack.pop(0)
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _collect_locals(self) -> Set[str]:
        names: Set[str] = set()
        args = getattr(self.fn, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                names.add(arg.arg)
        for node in self._own_nodes():
            if isinstance(node, ast.Global):
                self._globals.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    names.update(_bound_names(target))
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                names.update(_bound_names(node.target))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                names.update(_bound_names(node.target))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        names.update(_bound_names(item.optional_vars))
            elif isinstance(node, ast.comprehension):
                names.update(_bound_names(node.target))
            elif isinstance(node, ast.ExceptHandler) and node.name:
                names.add(node.name)
        return names - self._globals

    def _is_module_global(self, name: str) -> bool:
        return (
            name in self._module_names
            and name not in self._locals
        ) or name in self._globals

    def _store_hazard(self, target: ast.AST, verb: str) -> None:
        if isinstance(target, ast.Name):
            if target.id in self._globals:
                self.hazards.append(
                    (
                        target.lineno,
                        f"{verb} to module global `{target.id}` "
                        "(declared `global`)",
                    )
                )
        elif isinstance(target, ast.Subscript):
            chain = attr_chain(target.value)
            if chain is not None and self._is_module_global(chain[0]):
                self.hazards.append(
                    (
                        target.lineno,
                        f"{verb} into module-level container "
                        f"`{'.'.join(chain)}`",
                    )
                )
        elif isinstance(target, ast.Attribute):
            chain = attr_chain(target)
            if chain is not None and chain[0] in self._import_aliases:
                self.hazards.append(
                    (
                        target.lineno,
                        f"{verb} to module attribute `{'.'.join(chain)}`",
                    )
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store_hazard(element, verb)

    def _call_hazard(self, node: ast.Call) -> None:
        chain = attr_chain(node.func)
        if chain is None:
            return
        head = chain[0]
        if len(chain) == 2 and chain[1] in _MUTATORS and self._is_module_global(
            head
        ):
            self.hazards.append(
                (
                    node.lineno,
                    f"mutating call `{'.'.join(chain)}(...)` on "
                    "module-level container",
                )
            )
        if head in self._time_aliases and chain[-1] in _TIME_FUNCS:
            self.hazards.append(
                (node.lineno, f"wall-clock read `{'.'.join(chain)}()`")
            )
        elif head in self._datetime_aliases and chain[-1] in _DATETIME_FUNCS:
            self.hazards.append(
                (node.lineno, f"wall-clock read `{'.'.join(chain)}()`")
            )
        elif head in self._os_aliases and chain[-1] in _OS_FUNCS:
            self.hazards.append(
                (node.lineno, f"environment read `{'.'.join(chain)}()`")
            )

    def scan(self) -> List[Tuple[int, str]]:
        for node in self._own_nodes():
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._store_hazard(target, "assignment")
            elif isinstance(node, ast.AugAssign):
                self._store_hazard(node.target, "augmented assignment")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._store_hazard(target, "delete")
            elif isinstance(node, ast.Call):
                self._call_hazard(node)
            elif isinstance(node, ast.Attribute):
                chain = attr_chain(node)
                if (
                    chain is not None
                    and len(chain) >= 2
                    and chain[0] in self._os_aliases
                    and chain[1] == "environ"
                ):
                    self.hazards.append(
                        (node.lineno, "environment read `os.environ`")
                    )
        return sorted(set(self.hazards))


def _bound_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.update(_bound_names(element))
    elif isinstance(target, ast.Starred):
        names.update(_bound_names(target.value))
    return names


class WorkerSafetyRule(ProjectRule):
    id = "worker-safety"
    description = (
        "callables reachable from worker-pool roots must not mutate "
        "module globals, read the wall clock/environment, or ship "
        "unpicklable closures"
    )

    def _roots(
        self, ctx: ProjectContext
    ) -> Tuple[Set[str], List[Finding]]:
        """Resolve WORKER_ROOTS registries + shipments into root qnames."""
        findings: List[Finding] = []
        registered: Set[str] = set()
        roots: Set[str] = set()
        graph: CallGraph = ctx.graph
        for mod in ctx.modules:
            for dotted, lineno in parse_worker_roots(mod):
                node_qname = graph.resolve_callable(dotted)
                if node_qname is None:
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=mod.rel,
                            line=lineno,
                            message=(
                                f"WORKER_ROOTS entry `{dotted}` does not "
                                "resolve to a known project callable"
                            ),
                        )
                    )
                    continue
                registered.add(node_qname)
                roots.add(node_qname)
        for shipment in graph.shipments:
            if shipment.unpicklable:
                findings.append(
                    Finding(
                        rule=self.id,
                        path=shipment.path,
                        line=shipment.line,
                        message=(
                            f"`{shipment.arg}` shipped to {shipment.sink} "
                            "is a lambda/closure and cannot cross a spawn "
                            "boundary; use a module-level function"
                        ),
                    )
                )
                continue
            if shipment.target is None:
                findings.append(
                    Finding(
                        rule=self.id,
                        path=shipment.path,
                        line=shipment.line,
                        message=(
                            f"cannot statically resolve `{shipment.arg}` "
                            f"shipped to {shipment.sink}; register its "
                            "target in WORKER_ROOTS and pragma this site"
                        ),
                    )
                )
                continue
            node_qname = graph.resolve_callable(shipment.target)
            if node_qname is None:
                continue
            roots.add(node_qname)
            if node_qname not in registered:
                findings.append(
                    Finding(
                        rule=self.id,
                        path=shipment.path,
                        line=shipment.line,
                        message=(
                            f"`{shipment.arg}` is shipped to "
                            f"{shipment.sink} but `{shipment.target}` is "
                            "not registered in WORKER_ROOTS"
                        ),
                    )
                )
        return roots, findings

    def check_graph(self, ctx: ProjectContext) -> Iterable[Finding]:
        roots, findings = self._roots(ctx)
        paths = ctx.graph.reachable(roots)
        for qname in sorted(paths):
            entry = ctx.functions.get(qname)
            if entry is None:
                continue
            mod, fn = entry
            via = " -> ".join(paths[qname])
            for lineno, detail in _BodyScan(mod, fn).scan():
                findings.append(
                    Finding(
                        rule=self.id,
                        path=mod.rel,
                        line=lineno,
                        message=(
                            f"{detail} in worker-reachable `{qname}` "
                            f"(via {via})"
                        ),
                    )
                )
        # One finding per (path, line, rule): when several roots reach
        # the same hazard, keep the lexicographically smallest message
        # so fingerprints and reports are stable across runs.
        best: Dict[Tuple[str, int], Finding] = {}
        for finding in findings:
            key = (finding.path, finding.line)
            held = best.get(key)
            if held is None or finding.message < held.message:
                best[key] = finding
        return [best[key] for key in sorted(best)]
