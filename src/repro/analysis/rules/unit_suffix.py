"""Rule ``unit-suffix``: physical dataclass fields carry unit suffixes.

The chip/PDN/NoC/runtime models pass raw floats around; the only thing
standing between ``exec_time`` in seconds and ``exec_time`` in cycles
is the field name.  The codebase convention is an SI-unit suffix —
canonical ``_s`` ``_v`` ``_w`` ``_hz`` ``_j`` ``_b``, plus derived
suffixes for percent, temperature, RLC values, geometry, and cycle
counts.  Dimensionless quantities use a ratio-style suffix
(``_ratio``/``_scale``/``_fraction``/``_pct``) or a registered
exemption below.

Scope: ``float``-annotated fields of ``@dataclass`` classes in the
``chip``/``pdn``/``noc``/``runtime`` packages.  ``int`` fields are
treated as dimensionless counts/indices and private (``_``-prefixed)
accumulators are skipped.  New dimensionless vocabulary must be added
to :data:`EXEMPT_FIELDS` with a rationale — that review step is the
point of the rule.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding
from repro.analysis.rules._util import is_dataclass_def

#: Packages (under ``repro``) whose dataclasses model physical state.
SCOPED_PACKAGES = frozenset({"chip", "pdn", "noc", "runtime"})

#: Canonical SI suffixes from the issue, then accepted derived units.
UNIT_SUFFIXES = (
    # canonical
    "_s",
    "_v",
    "_w",
    "_hz",
    "_j",
    "_b",
    # derived / scaled units in established use
    "_pct",
    "_c",
    "_f",
    "_h",
    "_ohm",
    "_nm",
    "_mm2",
    "_um2",
    "_cycles",
    "_flits",
    # dimensionless markers
    "_ratio",
    "_scale",
    "_fraction",
)

#: Registered exemptions: established domain vocabulary that is either
#: dimensionless or named *as* its unit.  Keyed by field name; the value
#: is the rationale shown nowhere but kept for reviewers.
EXEMPT_FIELDS = {
    # supply/threshold voltages named by long-standing convention (volts)
    "vdd": "supply voltage in volts; ubiquitous domain name",
    "vdd_nominal": "nominal supply voltage in volts",
    "vdd_ntc": "near-threshold supply voltage in volts",
    "vth": "threshold voltage in volts",
    # whole-word unit names on circuit primitives
    "ohms": "field name is the unit",
    "farads": "field name is the unit",
    "henries": "field name is the unit",
    "volts": "field name is the unit",
    # dimensionless model parameters
    "alpha": "velocity-saturation exponent (dimensionless)",
    "swing": "normalised waveform amplitude (dimensionless)",
    "sharpness": "waveform shape parameter (dimensionless)",
    "kappa2": "normalised 2-hop PSN coupling coefficient",
    "z_own_router": "normalised router self-impedance",
    "z_cross_router": "normalised router cross-impedance",
    "rate": "injection rate in flits/cycle (dimensionless)",
    "avg_hops": "hop count (dimensionless)",
    "max_rho": "link utilisation rho (dimensionless)",
    "buffer_occupancy": "fraction of buffer slots in use",
    "buffer_threshold": "occupancy fraction threshold",
    # TilePower components: watts, but the 4-field API predates the rule
    "core_dynamic": "watts; established TilePower API",
    "core_leakage": "watts; established TilePower API",
    "router_dynamic": "watts; established TilePower API",
    "router_leakage": "watts; established TilePower API",
}


class UnitSuffixRule(Rule):
    id = "unit-suffix"
    description = (
        "float dataclass fields in chip/pdn/noc/runtime need a unit "
        "suffix or a registered exemption"
    )

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        parts = mod.package_parts
        if len(parts) < 2 or parts[1] not in SCOPED_PACKAGES:
            return
        for node in ast.walk(mod.tree):
            if not (isinstance(node, ast.ClassDef) and is_dataclass_def(node)):
                continue
            for stmt in node.body:
                if not (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                ):
                    continue
                name = stmt.target.id
                if ast.unparse(stmt.annotation) != "float":
                    continue
                if name.startswith("_"):
                    continue
                if name.endswith(UNIT_SUFFIXES) or name in EXEMPT_FIELDS:
                    continue
                yield Finding(
                    rule=self.id,
                    path=mod.rel,
                    line=stmt.lineno,
                    message=(
                        f"float field `{node.name}.{name}` has no unit "
                        "suffix; rename (e.g. `_s`, `_w`, `_pct`, "
                        "`_ratio`) or register an exemption in "
                        "repro/analysis/rules/unit_suffix.py"
                    ),
                )
