"""Rule ``seed-provenance``: every RNG seed must trace to a blessed origin.

PR 6 replaced additive seed offsets (``base + 1000 * i`` — collision
prone across campaigns) with hash-derived streams from
``repro.harness.seeding.derive_seed(s)``.  This rule keeps ad-hoc
integer arithmetic from creeping back in: the argument of every RNG
constructor (``default_rng(x)``, ``random.Random(x)``,
``SeedSequence(x)``, bit generators) must *trace*, through assignments,
tuple unpacking, attribute/subscript reads and project-call summaries,
back to one of:

* a call to ``derive_seed``/``derive_seeds`` (including via a helper
  whose returns all trace there — call summaries are computed to a
  fixpoint over the project);
* an explicit function parameter (the caller owns provenance — e.g.
  ``def run_point(point): rng = default_rng(point.seed)``);
* a whitelisted pure converter of the above (``int``, ``abs``,
  ``zip``/``enumerate``/``sorted``/``tuple``/``list``/``min``/``max``).

Literals and arithmetic (``BinOp``/``UnaryOp``) are *not* acceptable:
``default_rng(seed * 1000 + i)`` is exactly the collision class the
derive_seed migration removed.  Legacy pinned streams keep their bytes
via ``derive_seeds(..., pinned=...)`` or a
``# parmlint: ok[seed-provenance]`` pragma at the constructor site with
a justification comment.

Zero-argument constructors (OS entropy) are the seeded-rng rule's job;
this rule only fires on constructors given at least one argument.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import ModuleInfo, ProjectContext, ProjectRule
from repro.analysis.findings import Finding
from repro.analysis.rules._util import attr_chain, from_imports, module_aliases

#: The blessed seed-derivation functions (repro.harness.seeding).
DERIVE_FUNCS = frozenset({"derive_seed", "derive_seeds"})

#: RNG constructors whose seed argument this rule checks.
SEEDED_CTORS = frozenset(
    {
        "default_rng", "Generator", "SeedSequence", "RandomState",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "Random",
    }
)

#: Pure converters/combinators that preserve provenance when at least
#: one argument is traced (and the rest are traced or constant).
_CONVERTERS = frozenset(
    {
        "abs", "enumerate", "int", "list", "max", "min", "range",
        "reversed", "sorted", "sum", "tuple", "zip",
    }
)


def _derive_aliases(mod: ModuleInfo) -> Set[str]:
    """Local names bound to derive_seed/derive_seeds in this module."""
    aliases: Set[str] = set()
    for name, local, _lineno in from_imports(mod.tree, "repro.harness.seeding"):
        if name in DERIVE_FUNCS:
            aliases.add(local)
    return aliases


def _seeding_module_aliases(mod: ModuleInfo) -> Set[str]:
    return module_aliases(mod.tree, "repro.harness.seeding") | module_aliases(
        mod.tree, "seeding"
    )


class _Tracer:
    """Intra-procedural seed-provenance tracking for one callable."""

    def __init__(
        self,
        mod: ModuleInfo,
        fn: ast.AST,
        summaries: Dict[str, bool],
        resolve_call: "_CallResolver",
    ) -> None:
        self._mod = mod
        self._fn = fn
        self._summaries = summaries
        self._resolve = resolve_call
        self._derive_aliases = _derive_aliases(mod)
        self._seeding_mods = _seeding_module_aliases(mod)
        self.ok: Set[str] = set()
        args = getattr(fn, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                self.ok.add(arg.arg)
        self.returns_ok = True
        self.saw_return = False

    # -- provenance predicate ------------------------------------------

    def _is_derive_call(self, func: ast.AST) -> bool:
        if isinstance(func, ast.Name):
            return func.id in self._derive_aliases
        chain = attr_chain(func)
        if chain is None:
            return False
        return chain[-1] in DERIVE_FUNCS and (
            chain[0] in self._seeding_mods or len(chain) >= 2
        )

    def is_ok(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.ok
        if isinstance(expr, ast.Attribute):
            return self.is_ok(expr.value)
        if isinstance(expr, ast.Subscript):
            return self.is_ok(expr.value)
        if isinstance(expr, ast.Starred):
            return self.is_ok(expr.value)
        if isinstance(expr, ast.IfExp):
            return self.is_ok(expr.body) and self.is_ok(expr.orelse)
        if isinstance(expr, (ast.Tuple, ast.List)):
            return all(self.is_ok(e) for e in expr.elts)
        if isinstance(expr, ast.Call):
            if self._is_derive_call(expr.func):
                return True
            if isinstance(expr.func, ast.Name) and expr.func.id in _CONVERTERS:
                traced = [a for a in expr.args if self.is_ok(a)]
                rest_const = all(
                    isinstance(a, ast.Constant) or self.is_ok(a)
                    for a in expr.args
                )
                return bool(traced) and rest_const
            target = self._resolve(self._mod, self._fn, expr.func)
            if target is not None and self._summaries.get(target, False):
                return True
            return False
        return False

    # -- statement walk -------------------------------------------------

    def _handle_assign(self, targets: Sequence[ast.AST], value: ast.AST) -> None:
        value_ok = self.is_ok(value)
        for target in targets:
            self._bind(target, value_ok)

    def _bind(self, target: ast.AST, value_ok: bool) -> None:
        if isinstance(target, ast.Name):
            if value_ok:
                self.ok.add(target.id)
            else:
                self.ok.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, value_ok)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, value_ok)

    def walk(self) -> None:
        if isinstance(self._fn, ast.Lambda):
            return  # expression body: nothing binds, params are ok
        self._walk_body(getattr(self._fn, "body", []))

    def _walk_body(self, body: Sequence[ast.AST]) -> None:
        for node in body:
            self._walk_stmt(node)

    def _walk_stmt(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are their own call-graph nodes
        if isinstance(node, ast.Assign):
            self._handle_assign(node.targets, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._handle_assign([node.target], node.value)
        elif isinstance(node, ast.AugAssign):
            # Arithmetic kills provenance: seed += i is the collision
            # class this rule exists to keep out.
            self._bind(node.target, False)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._bind(node.target, self.is_ok(node.iter))
            self._walk_body(node.body)
            self._walk_body(node.orelse)
        elif isinstance(node, (ast.While, ast.If)):
            self._walk_body(node.body)
            self._walk_body(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, self.is_ok(item.context_expr))
            self._walk_body(node.body)
        elif isinstance(node, ast.Try):
            self._walk_body(node.body)
            for handler in node.handlers:
                self._walk_body(handler.body)
            self._walk_body(node.orelse)
            self._walk_body(node.finalbody)
        elif isinstance(node, ast.Return):
            self.saw_return = True
            if node.value is None or not self.is_ok(node.value):
                self.returns_ok = False


class _CallResolver:
    """Maps a call expression to a project-function qname (best effort)."""

    def __init__(self, ctx: ProjectContext):
        self._defs: Dict[Tuple[str, str], str] = {}
        self._imports: Dict[Tuple[str, str], str] = {}
        for mod in ctx.modules:
            for node in mod.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._defs[(mod.module, node.name)] = (
                        f"{mod.module}.{node.name}"
                    )
                elif isinstance(node, ast.ImportFrom) and node.level == 0:
                    base = node.module or ""
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        local = alias.asname or alias.name
                        self._imports[(mod.module, local)] = (
                            f"{base}.{alias.name}" if base else alias.name
                        )
        self._known = set(self._defs.values())

    def __call__(
        self, mod: ModuleInfo, fn: ast.AST, func: ast.AST
    ) -> Optional[str]:
        if isinstance(func, ast.Name):
            local = self._defs.get((mod.module, func.id))
            if local is not None:
                return local
            imported = self._imports.get((mod.module, func.id))
            if imported is not None and imported in self._known:
                return imported
            return None
        chain = attr_chain(func)
        if chain is not None and len(chain) == 2:
            # mod_alias.helper(...) — try every module whose tail matches.
            dotted = self._imports.get((mod.module, chain[0]))
            if dotted is not None:
                candidate = f"{dotted}.{chain[1]}"
                if candidate in self._known:
                    return candidate
        return None


def _ctor_aliases(mod: ModuleInfo) -> Tuple[Set[str], Dict[str, str]]:
    """RNG-module aliases + from-imported constructor local names."""
    rng_modules = (
        module_aliases(mod.tree, "random")
        | module_aliases(mod.tree, "numpy")
        | module_aliases(mod.tree, "numpy.random")
    )
    ctor_locals: Dict[str, str] = {}
    for source in ("random", "numpy.random"):
        for name, local, _lineno in from_imports(mod.tree, source):
            if name in SEEDED_CTORS:
                ctor_locals[local] = name
    return rng_modules, ctor_locals


def _seed_argument(call: ast.Call) -> Optional[ast.AST]:
    """The seed expression of an RNG constructor call, if any."""
    for keyword in call.keywords:
        if keyword.arg in ("seed", "entropy"):
            return keyword.value
    if call.args:
        return call.args[0]
    return None


class SeedProvenanceRule(ProjectRule):
    id = "seed-provenance"
    description = (
        "RNG constructor seeds must trace to derive_seed(s), a pinned "
        "stream, or an explicit function parameter - no literals or "
        "seed arithmetic"
    )

    def _compute_summaries(
        self, ctx: ProjectContext, resolve: _CallResolver
    ) -> Dict[str, bool]:
        """Fixpoint: does a function's every return trace to a seed origin?"""
        summaries: Dict[str, bool] = {}
        items = sorted(ctx.functions)
        for _round in range(3):
            changed = False
            for qname in items:
                mod, fn = ctx.functions[qname]
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                tracer = _Tracer(mod, fn, summaries, resolve)
                tracer.walk()
                verdict = tracer.saw_return and tracer.returns_ok
                if summaries.get(qname) != verdict:
                    summaries[qname] = verdict
                    changed = True
            if not changed:
                break
        return summaries

    def check_graph(self, ctx: ProjectContext) -> Iterable[Finding]:
        resolve = _CallResolver(ctx)
        summaries = self._compute_summaries(ctx, resolve)
        findings: List[Finding] = []
        for qname in sorted(ctx.functions):
            mod, fn = ctx.functions[qname]
            rng_modules, ctor_locals = _ctor_aliases(mod)
            if not rng_modules and not ctor_locals:
                continue
            tracer = _Tracer(mod, fn, summaries, resolve)
            findings.extend(
                self._check_callable(mod, fn, tracer, rng_modules, ctor_locals)
            )
        # Module top level: constructors outside any def.
        for mod in ctx.modules:
            rng_modules, ctor_locals = _ctor_aliases(mod)
            if not rng_modules and not ctor_locals:
                continue
            tracer = _Tracer(mod, mod.tree, summaries, resolve)
            findings.extend(
                self._check_callable(
                    mod, mod.tree, tracer, rng_modules, ctor_locals
                )
            )
        unique = {(f.path, f.line, f.message): f for f in findings}
        return [unique[key] for key in sorted(unique)]

    def _check_callable(
        self,
        mod: ModuleInfo,
        fn: ast.AST,
        tracer: _Tracer,
        rng_modules: Set[str],
        ctor_locals: Dict[str, str],
    ) -> Iterable[Finding]:
        # Two passes: establish final ok-set via the ordered walk, then
        # judge constructor sites.  (Single forward pass would be more
        # precise around rebinding, but rebinding a seed name to a
        # non-traced value later in the function is vanishingly rare and
        # the two-pass form keeps the walker simple.)
        tracer.walk()
        out: List[Finding] = []
        for node in _own_nodes(fn):
            if not isinstance(node, ast.Call):
                continue
            ctor = self._ctor_name(node.func, rng_modules, ctor_locals)
            if ctor is None:
                continue
            seed = _seed_argument(node)
            if seed is None:
                continue  # zero-arg constructors: seeded-rng's gap rule
            if isinstance(seed, ast.Constant) and seed.value is None:
                continue  # explicit None == documented OS entropy opt-out
            if tracer.is_ok(seed):
                continue
            out.append(
                Finding(
                    rule=self.id,
                    path=mod.rel,
                    line=node.lineno,
                    message=(
                        f"seed `{ast.unparse(seed)}` of {ctor}(...) does "
                        "not trace to derive_seed(s)/a parameter; use "
                        "repro.harness.seeding (pinned= for legacy "
                        "streams) or pragma with justification"
                    ),
                )
            )
        return out

    def _ctor_name(
        self,
        func: ast.AST,
        rng_modules: Set[str],
        ctor_locals: Dict[str, str],
    ) -> Optional[str]:
        if isinstance(func, ast.Name):
            return ctor_locals.get(func.id)
        chain = attr_chain(func)
        if chain is None or len(chain) < 2:
            return None
        if chain[0] in rng_modules and chain[-1] in SEEDED_CTORS:
            return chain[-1]
        return None


def _own_nodes(fn: ast.AST) -> Iterable[ast.AST]:
    if isinstance(fn, ast.Module):
        children = [
            n
            for n in fn.body
            if not isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]
    else:
        children = list(ast.iter_child_nodes(fn))
    stack: List[ast.AST] = children
    while stack:
        node = stack.pop(0)
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
