"""Shared AST helpers for parmlint rules."""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple


def attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Flatten ``a.b.c`` into ``("a", "b", "c")``.

    Returns None when the expression root is not a plain name (e.g.
    ``get_rng().random`` or subscripts), which no name-based rule can
    resolve statically.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def module_aliases(tree: ast.Module, target: str) -> Set[str]:
    """Local names bound to module ``target`` via ``import``/``as``.

    Covers ``import target``, ``import target as x``, and — for dotted
    targets like ``numpy.random`` — ``from numpy import random [as x]``.
    """
    aliases: Set[str] = set()
    head, _, tail = target.rpartition(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == target:
                    aliases.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if head and node.module == head:
                for alias in node.names:
                    if alias.name == tail:
                        aliases.add(alias.asname or alias.name)
    return aliases


def from_imports(tree: ast.Module, module: str) -> List[Tuple[str, str, int]]:
    """``(imported_name, local_name, lineno)`` from ``from module import``.

    Sorted, so rules that turn these into findings emit them in a
    stable order (the linter holds itself to its own nondet-set-iter
    rule).
    """
    out: Set[Tuple[str, str, int]] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.ImportFrom)
            and node.level == 0
            and node.module == module
        ):
            for alias in node.names:
                out.add((alias.name, alias.asname or alias.name, node.lineno))
    return sorted(out)


def is_dataclass_def(node: ast.ClassDef) -> bool:
    """True when ``node`` carries a ``@dataclass`` decorator."""
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        chain = attr_chain(target)
        if chain and chain[-1] == "dataclass":
            return True
    return False
