"""Rule ``import-cycle``: the ``repro`` module graph stays acyclic.

The layering is deliberate — ``core`` < ``chip``/``apps`` < ``pdn`` /
``noc`` < ``runtime`` < ``exp`` — and import cycles are how that decays:
one convenience import and two subsystems can no longer be tested or
reasoned about independently.  This is a whole-project rule: it builds
the import graph from every module's AST and reports each strongly
connected component larger than one module (or a self-import).

Only static ``import``/``from ... import`` statements are considered;
imports created at run time (``importlib``) are out of scope.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Sequence, Set

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding


def _resolve(target: str, known: Set[str]) -> str:
    """Longest known module prefix of ``target`` ('' when external)."""
    parts = target.split(".")
    while parts:
        cand = ".".join(parts)
        if cand in known:
            return cand
        parts.pop()
    return ""


def _edges(mod: ModuleInfo, known: Set[str]) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                resolved = _resolve(alias.name, known)
                if resolved:
                    out.add(resolved)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: anchor on this module's package.
                base_parts = mod.module.split(".")[: -node.level]
                prefix = ".".join(base_parts)
                base = f"{prefix}.{node.module}" if node.module else prefix
            else:
                base = node.module or ""
            for alias in node.names:
                resolved = _resolve(f"{base}.{alias.name}", known) or _resolve(
                    base, known
                )
                if resolved:
                    out.add(resolved)
    out.discard(mod.module)
    return out


def _strongly_connected(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's SCC, iterative, deterministic over sorted nodes."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(sorted(graph[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(sorted(scc))
    return sccs


class ImportCycleRule(Rule):
    id = "import-cycle"
    description = "the repro import graph must stay acyclic"

    def check_project(self, mods: Sequence[ModuleInfo]) -> Iterable[Finding]:
        by_name = {mod.module: mod for mod in mods}
        known = set(by_name)
        graph = {mod.module: _edges(mod, known) for mod in mods}
        for scc in _strongly_connected(graph):
            is_cycle = len(scc) > 1 or scc[0] in graph.get(scc[0], set())
            if not is_cycle:
                continue
            rep = by_name[scc[0]]
            yield Finding(
                rule=self.id,
                path=rep.rel,
                line=0,
                message=(
                    "import cycle between modules: " + " -> ".join(scc)
                ),
            )
