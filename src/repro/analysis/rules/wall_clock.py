"""Rule ``wall-clock``: no real-time reads inside simulation logic.

Simulated time lives in the model (``exec_time_s``, cycle counters);
reading the host's clock couples results to machine load and breaks
replay.  ``time.perf_counter`` & friends are legitimate in reporting
code (``exp/``) — annotate those call sites with
``# parmlint: ok[wall-clock]`` (or ``ok-file`` for timing-only
modules).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding
from repro.analysis.rules._util import attr_chain, from_imports, module_aliases

#: ``time`` module functions that read (or depend on) the wall clock.
BANNED_TIME = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    }
)

#: ``datetime``/``date`` constructors that capture "now".
BANNED_NOW = frozenset({"now", "utcnow", "today"})


class WallClockRule(Rule):
    id = "wall-clock"
    description = (
        "no time.time/perf_counter/datetime.now in simulation logic "
        "(pragma-annotate reporting code)"
    )

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        tree = mod.tree
        time_aliases = module_aliases(tree, "time")
        datetime_mod_aliases = module_aliases(tree, "datetime")
        datetime_cls_aliases = {
            local
            for name, local, _ in from_imports(tree, "datetime")
            if name in ("datetime", "date")
        }

        for name, _, lineno in from_imports(tree, "time"):
            if name in BANNED_TIME:
                yield Finding(
                    rule=self.id,
                    path=mod.rel,
                    line=lineno,
                    message=(
                        f"`from time import {name}` imports a wall-clock "
                        "function into simulation code"
                    ),
                )

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None or len(chain) < 2:
                continue
            dotted = ".".join(chain)
            if chain[0] in time_aliases and chain[1] in BANNED_TIME:
                yield self.finding(
                    mod,
                    node,
                    f"call to {dotted} reads the wall clock; simulated "
                    "time must come from the model",
                )
            elif (
                chain[0] in datetime_mod_aliases
                and chain[-1] in BANNED_NOW
            ) or (
                chain[0] in datetime_cls_aliases and chain[1] in BANNED_NOW
            ):
                yield self.finding(
                    mod,
                    node,
                    f"call to {dotted} captures the current date/time; "
                    "results become machine-dependent",
                )
