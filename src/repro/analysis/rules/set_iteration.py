"""Rule ``nondet-set-iter``: no iteration over bare sets in sim paths.

Set iteration order follows hash values, not insertion order: for
strings it changes per process (hash randomisation), and even for ints
it reorders when the set's history changes.  A ``for`` loop over a set
in a simulation path therefore produces run-order-dependent floating
point accumulation and tie-breaking.  Wrap the set in ``sorted(...)``
(every real fix in this repo) or annotate a genuinely order-free loop
with ``# parmlint: ok[nondet-set-iter]``.

Detection is heuristic: an expression "is a set" when it is a set
literal / set comprehension, a ``set(...)``/``frozenset(...)`` call, a
binary ``| & ^ -`` of two such expressions, or a name whose annotation
(parameter or variable) is ``Set[...]``/``set``.  Flagged contexts are
``for`` loops, comprehension sources, and ``list()``/``tuple()``/
``enumerate()`` over a set (an order-sensitive materialisation).
``sorted(...)`` and membership tests are, of course, fine.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding

_SET_ANNOTATIONS = ("Set[", "set[", "FrozenSet[", "frozenset[")
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate"})


def _annotated_set_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()

    def record(name: str, annotation: ast.AST) -> None:
        text = ast.unparse(annotation)
        if text in ("set", "frozenset") or text.startswith(_SET_ANNOTATIONS):
            names.add(name)

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = [
                *node.args.posonlyargs,
                *node.args.args,
                *node.args.kwonlyargs,
            ]
            for arg in args:
                if arg.annotation is not None:
                    record(arg.arg, arg.annotation)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            record(node.target.id, node.annotation)
    return names


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, set_names) and _is_set_expr(
            node.right, set_names
        )
    return False


class SetIterationRule(Rule):
    id = "nondet-set-iter"
    description = (
        "no iteration over bare sets; wrap in sorted() for stable order"
    )

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        set_names = _annotated_set_names(mod.tree)

        def flag(node: ast.AST, what: str) -> Finding:
            return Finding(
                rule=self.id,
                path=mod.rel,
                line=node.lineno,
                message=(
                    f"{what} iterates a set in hash order; wrap in "
                    "sorted() or annotate with "
                    "`# parmlint: ok[nondet-set-iter]`"
                ),
            )

        for node in ast.walk(mod.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter, set_names):
                    yield flag(node, "for-loop")
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    if _is_set_expr(gen.iter, set_names):
                        yield flag(node, "comprehension")
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_SENSITIVE_CALLS
                and node.args
                and _is_set_expr(node.args[0], set_names)
            ):
                yield flag(node, f"{node.func.id}() call")
