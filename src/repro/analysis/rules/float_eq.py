"""Rule ``float-eq``: no ``==`` / ``!=`` between float expressions.

Exact float equality is almost always a latent bug in numeric
simulation code: two mathematically-equal expressions differ in the
last ulp, and the branch silently flips between platforms or after a
refactor.  Use an ordered comparison (``<= 0.0`` for non-negative
quantities), ``math.isclose``, or — for a genuine *sentinel* value that
is only ever assigned exactly (e.g. "not yet estimated" = ``0.0``) —
annotate the line with ``# parmlint: ok[float-eq]``.

Detection is heuristic (Python is untyped); an operand "looks float"
when it is

* a float literal (``0.0``, ``1e-9``), or
* a name/attribute carrying a recognised unit suffix (``exec_time_s``,
  ``total_power_w``, ...), the same convention the ``unit-suffix`` rule
  enforces, or
* an arithmetic expression containing either of the above.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding

#: Name suffixes that mark a value as a physical float quantity.
FLOAT_SUFFIXES = (
    "_s",
    "_v",
    "_w",
    "_hz",
    "_j",
    "_pct",
    "_c",
    "_ohm",
    "_f",
    "_h",
)

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow, ast.Mod)


def _looks_float(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Name):
        return node.id.endswith(FLOAT_SUFFIXES)
    if isinstance(node, ast.Attribute):
        return node.attr.endswith(FLOAT_SUFFIXES)
    if isinstance(node, ast.UnaryOp):
        return _looks_float(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH_OPS):
        return _looks_float(node.left) or _looks_float(node.right)
    return False


class FloatEqRule(Rule):
    id = "float-eq"
    description = (
        "no ==/!= on float expressions; use ordered comparison, "
        "math.isclose, or an explicit sentinel pragma"
    )

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _looks_float(left) or _looks_float(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        mod,
                        node,
                        f"float `{symbol}` comparison "
                        f"(`{ast.unparse(left)} {symbol} "
                        f"{ast.unparse(right)}`); use an ordered "
                        "comparison / math.isclose, or mark an "
                        "intentional sentinel with "
                        "`# parmlint: ok[float-eq]`",
                    )
