"""Rule ``seeded-rng``: no process-global RNG state in simulation code.

PARM's fault campaigns promise bit-identical replays for a fixed seed;
one call to ``random.random()`` or ``np.random.normal()`` breaks that
promise silently, because those functions draw from hidden module-level
state shared by every caller.  Stochastic code must thread an explicit
``numpy.random.Generator`` (or a seed that constructs one) instead.

Allowed constructors — instance-based, seedable APIs:

* ``np.random.default_rng(seed)`` / ``Generator`` / ``SeedSequence``
  and the bit-generator classes;
* stdlib ``random.Random(seed)`` (an owned instance, not the module).

The safe constructors are only safe *with a seed*: ``default_rng()``
and ``Random()`` called with no argument draw OS entropy and are never
replayable, so zero-argument constructor calls are flagged too.
(Whether a provided seed has legitimate provenance is the deeper
interprocedural ``seed-provenance`` rule's job.)
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding
from repro.analysis.rules._util import attr_chain, from_imports, module_aliases

#: Instance-based numpy.random names that do not touch global state.
SAFE_NUMPY = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "RandomState",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Stdlib ``random`` names that are safe to import/call.  SystemRandom
#: is deliberately absent: it is OS-entropy backed and never replayable.
SAFE_STDLIB = frozenset({"Random"})

#: Safe constructors that silently fall back to OS entropy when called
#: with no arguments at all (``Generator`` is absent: it requires a bit
#: generator positionally, so a zero-arg call is already a TypeError).
ENTROPY_WHEN_UNSEEDED = (SAFE_NUMPY | SAFE_STDLIB) - {"Generator"}


def _is_zero_arg(call: ast.Call) -> bool:
    return not call.args and not call.keywords


class SeededRngRule(Rule):
    id = "seeded-rng"
    description = (
        "no global-state random.* / np.random.* calls; thread a seeded "
        "numpy.random.Generator"
    )

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        tree = mod.tree
        random_aliases = module_aliases(tree, "random")
        numpy_aliases = module_aliases(tree, "numpy")
        np_random_aliases = module_aliases(tree, "numpy.random")

        ctor_locals = {}
        for source in ("random", "numpy.random"):
            for name, local, _lineno in from_imports(tree, source):
                if name in ENTROPY_WHEN_UNSEEDED:
                    ctor_locals[local] = name

        for name, local, lineno in from_imports(tree, "random"):
            if name not in SAFE_STDLIB:
                yield Finding(
                    rule=self.id,
                    path=mod.rel,
                    line=lineno,
                    message=(
                        f"`from random import {name}` binds a global-state "
                        "RNG function; use random.Random(seed) or a "
                        "numpy Generator"
                    ),
                )
        for name, local, lineno in from_imports(tree, "numpy.random"):
            if name not in SAFE_NUMPY:
                yield Finding(
                    rule=self.id,
                    path=mod.rel,
                    line=lineno,
                    message=(
                        f"`from numpy.random import {name}` binds a "
                        "global-state RNG function; use default_rng(seed)"
                    ),
                )

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in ctor_locals
                and _is_zero_arg(node)
            ):
                yield self.finding(
                    mod,
                    node,
                    f"{ctor_locals[node.func.id]}() with no seed draws OS "
                    "entropy and is never replayable; pass an explicit "
                    "seed",
                )
                continue
            chain = attr_chain(node.func)
            if chain is None or len(chain) < 2:
                continue
            safe_ctor = None
            if chain[0] in random_aliases and chain[1] in SAFE_STDLIB:
                safe_ctor = chain[1]
            elif (
                chain[0] in numpy_aliases
                and len(chain) >= 3
                and chain[1] == "random"
                and chain[2] in SAFE_NUMPY
            ):
                safe_ctor = chain[2]
            elif chain[0] in np_random_aliases and chain[1] in SAFE_NUMPY:
                safe_ctor = chain[1]
            if (
                safe_ctor in ENTROPY_WHEN_UNSEEDED
                and _is_zero_arg(node)
            ):
                yield self.finding(
                    mod,
                    node,
                    f"{'.'.join(chain)}() with no seed draws OS entropy "
                    "and is never replayable; pass an explicit seed",
                )
                continue
            if chain[0] in random_aliases and chain[1] not in SAFE_STDLIB:
                yield self.finding(
                    mod,
                    node,
                    f"call to {'.'.join(chain)} uses the process-global "
                    "RNG; thread a seeded Generator/Random instance",
                )
            elif (
                chain[0] in numpy_aliases
                and len(chain) >= 3
                and chain[1] == "random"
                and chain[2] not in SAFE_NUMPY
            ):
                yield self.finding(
                    mod,
                    node,
                    f"call to {'.'.join(chain)} uses numpy's global RNG "
                    "state; use np.random.default_rng(seed)",
                )
            elif chain[0] in np_random_aliases and chain[1] not in SAFE_NUMPY:
                yield self.finding(
                    mod,
                    node,
                    f"call to {'.'.join(chain)} uses numpy's global RNG "
                    "state; use default_rng(seed)",
                )
