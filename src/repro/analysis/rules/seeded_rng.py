"""Rule ``seeded-rng``: no process-global RNG state in simulation code.

PARM's fault campaigns promise bit-identical replays for a fixed seed;
one call to ``random.random()`` or ``np.random.normal()`` breaks that
promise silently, because those functions draw from hidden module-level
state shared by every caller.  Stochastic code must thread an explicit
``numpy.random.Generator`` (or a seed that constructs one) instead.

Allowed constructors — instance-based, seedable APIs:

* ``np.random.default_rng(seed)`` / ``Generator`` / ``SeedSequence``
  and the bit-generator classes;
* stdlib ``random.Random(seed)`` (an owned instance, not the module).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding
from repro.analysis.rules._util import attr_chain, from_imports, module_aliases

#: Instance-based numpy.random names that do not touch global state.
SAFE_NUMPY = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "RandomState",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Stdlib ``random`` names that are safe to import/call.  SystemRandom
#: is deliberately absent: it is OS-entropy backed and never replayable.
SAFE_STDLIB = frozenset({"Random"})


class SeededRngRule(Rule):
    id = "seeded-rng"
    description = (
        "no global-state random.* / np.random.* calls; thread a seeded "
        "numpy.random.Generator"
    )

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        tree = mod.tree
        random_aliases = module_aliases(tree, "random")
        numpy_aliases = module_aliases(tree, "numpy")
        np_random_aliases = module_aliases(tree, "numpy.random")

        for name, local, lineno in from_imports(tree, "random"):
            if name not in SAFE_STDLIB:
                yield Finding(
                    rule=self.id,
                    path=mod.rel,
                    line=lineno,
                    message=(
                        f"`from random import {name}` binds a global-state "
                        "RNG function; use random.Random(seed) or a "
                        "numpy Generator"
                    ),
                )
        for name, local, lineno in from_imports(tree, "numpy.random"):
            if name not in SAFE_NUMPY:
                yield Finding(
                    rule=self.id,
                    path=mod.rel,
                    line=lineno,
                    message=(
                        f"`from numpy.random import {name}` binds a "
                        "global-state RNG function; use default_rng(seed)"
                    ),
                )

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None or len(chain) < 2:
                continue
            if chain[0] in random_aliases and chain[1] not in SAFE_STDLIB:
                yield self.finding(
                    mod,
                    node,
                    f"call to {'.'.join(chain)} uses the process-global "
                    "RNG; thread a seeded Generator/Random instance",
                )
            elif (
                chain[0] in numpy_aliases
                and len(chain) >= 3
                and chain[1] == "random"
                and chain[2] not in SAFE_NUMPY
            ):
                yield self.finding(
                    mod,
                    node,
                    f"call to {'.'.join(chain)} uses numpy's global RNG "
                    "state; use np.random.default_rng(seed)",
                )
            elif chain[0] in np_random_aliases and chain[1] not in SAFE_NUMPY:
                yield self.finding(
                    mod,
                    node,
                    f"call to {'.'.join(chain)} uses numpy's global RNG "
                    "state; use default_rng(seed)",
                )
