"""Rule ``silent-except``: no bare or pass-only exception handlers.

PR 1 added fault injection precisely so failures propagate in a
controlled way; a ``try: ... except: pass`` anywhere in the stack
defeats that by discarding evidence.  Handlers must either name the
exception *and* do something (log, re-raise, degrade explicitly), or be
annotated with ``# parmlint: ok[silent-except]`` where swallowing is a
documented design decision.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding


def _is_noop(stmt: ast.stmt) -> bool:
    if isinstance(stmt, ast.Pass):
        return True
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis
    )


class SilentExceptRule(Rule):
    id = "silent-except"
    description = "no bare `except:` and no pass-only exception handlers"

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    mod,
                    node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt "
                    "and hides faults; name the exception type",
                )
            elif all(_is_noop(stmt) for stmt in node.body):
                yield self.finding(
                    mod,
                    node,
                    "exception handler silently swallows the error; "
                    "handle it, re-raise, or annotate with "
                    "`# parmlint: ok[silent-except]`",
                )
