"""Rule ``shared-readonly``: declared worker-shared arrays are write-once.

The warm-pool plan moves large numpy state — route tables, PSN kernel
matrices, PDN transient plans — into ``multiprocessing.shared_memory``
mapped read-only into every worker.  A write to such an array after its
owning constructor finishes is a latent crash (read-only mapping) or,
worse, a silent cross-worker divergence today.

Classes opt in by declaring the contract as a plain class attribute::

    class ArrayNocEngine:
        __shared_readonly__ = ("_route_table", "_down_tile")
        __shared_readonly_init__ = ("_build_route_columns",)  # optional

``__shared_readonly__`` names instance attributes (numpy arrays) that
are read-only once constructed; ``__shared_readonly_init__`` names
additional builder methods (lazy constructors) allowed to write them,
on top of the always-allowed ``__init__``/``__post_init__``.

Enforcement is project-wide and deliberately name-conservative: *any*
``x.attr[...] = v``, ``x.attr += v``, ``x.attr = v``,
``np.copyto(x.attr, ...)``, or in-place ndarray method call
(``fill``/``sort``/``put``/``partition``/``resize``/``setflags``) on a
registered attribute name is flagged unless it happens inside an
allowed writer of a class registering that name.  Matching by name
(not by proven receiver type) trades a small false-positive risk —
pragma those — for catching every real escape, including writes
through aliases the type inference cannot see.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import ModuleInfo, ProjectContext, ProjectRule
from repro.analysis.findings import Finding
from repro.analysis.rules._util import attr_chain

DECL_NAME = "__shared_readonly__"
DECL_INIT_NAME = "__shared_readonly_init__"

#: Always-allowed writer methods of a declaring class.
_CTOR_METHODS = ("__init__", "__post_init__")

#: ndarray methods that mutate the array in place.
_ARRAY_MUTATORS = frozenset(
    {"fill", "partition", "put", "resize", "setflags", "sort", "byteswap"}
)


def _string_tuple(value: ast.AST) -> Optional[Tuple[str, ...]]:
    if not isinstance(value, (ast.Tuple, ast.List)):
        return None
    out: List[str] = []
    for element in value.elts:
        if isinstance(element, ast.Constant) and isinstance(
            element.value, str
        ):
            out.append(element.value)
        else:
            return None
    return tuple(out)


def collect_declarations(
    modules: Sequence[ModuleInfo],
) -> Dict[str, Set[str]]:
    """Map registered attr name -> allowed writer qnames, project-wide.

    Writers are ``{class_qname}.{method}`` strings for every declaring
    class's constructors and ``__shared_readonly_init__`` entries.
    """
    writers: Dict[str, Set[str]] = {}
    for mod in modules:
        for node in mod.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            attrs: Tuple[str, ...] = ()
            extra: Tuple[str, ...] = ()
            for stmt in node.body:
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if isinstance(target, ast.Name):
                        parsed = _string_tuple(stmt.value)
                        if parsed is None:
                            continue
                        if target.id == DECL_NAME:
                            attrs = parsed
                        elif target.id == DECL_INIT_NAME:
                            extra = parsed
            if not attrs:
                continue
            class_qname = f"{mod.module}.{node.name}"
            allowed = {
                f"{class_qname}.{method}"
                for method in tuple(_CTOR_METHODS) + extra
            }
            for attr in attrs:
                writers.setdefault(attr, set()).update(allowed)
    return writers


def _own_nodes(fn: ast.AST) -> Iterable[ast.AST]:
    if isinstance(fn, ast.Module):
        children: List[ast.AST] = [
            n
            for n in fn.body
            if not isinstance(
                n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
    else:
        children = list(ast.iter_child_nodes(fn))
    stack = children
    while stack:
        node = stack.pop(0)
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class SharedReadonlyRule(ProjectRule):
    id = "shared-readonly"
    description = (
        "attributes declared __shared_readonly__ (worker-shared numpy "
        "state) must not be written outside their owning constructor"
    )

    def check_graph(self, ctx: ProjectContext) -> Iterable[Finding]:
        writers = collect_declarations(ctx.modules)
        if not writers:
            return []
        findings: List[Finding] = []
        for qname in sorted(ctx.functions):
            mod, fn = ctx.functions[qname]
            findings.extend(self._scan(mod, fn, qname, writers))
        for mod in ctx.modules:
            findings.extend(self._scan(mod, mod.tree, mod.module, writers))
        unique = {(f.path, f.line, f.message): f for f in findings}
        return [unique[key] for key in sorted(unique)]

    def _registered_attr(
        self, expr: ast.AST, writers: Dict[str, Set[str]]
    ) -> Optional[str]:
        """The registered attribute name when ``expr`` reads one."""
        if isinstance(expr, ast.Attribute) and expr.attr in writers:
            return expr.attr
        return None

    def _scan(
        self,
        mod: ModuleInfo,
        fn: ast.AST,
        qname: str,
        writers: Dict[str, Set[str]],
    ) -> Iterable[Finding]:
        def allowed(attr: str) -> bool:
            return qname in writers[attr]

        def flag(node: ast.AST, attr: str, how: str) -> None:
            out.append(
                Finding(
                    rule=self.id,
                    path=mod.rel,
                    line=node.lineno,
                    message=(
                        f"{how} `{attr}` (declared __shared_readonly__) "
                        f"outside an owning constructor, in `{qname}`"
                    ),
                )
            )

        out: List[Finding] = []
        for node in _own_nodes(fn):
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            elif isinstance(node, ast.Call):
                self._scan_call(node, writers, allowed, flag)
                continue
            else:
                continue
            for target in targets:
                self._scan_target(node, target, writers, allowed, flag)
        return out

    def _scan_target(self, node, target, writers, allowed, flag) -> None:
        verb = (
            "augmented write to"
            if isinstance(node, ast.AugAssign)
            else "write to"
        )
        if isinstance(target, ast.Attribute):
            attr = self._registered_attr(target, writers)
            if attr is not None and not allowed(attr):
                flag(node, attr, f"{verb} attribute")
        elif isinstance(target, ast.Subscript):
            attr = self._registered_attr(target.value, writers)
            if attr is not None and not allowed(attr):
                flag(node, attr, f"{verb} element of")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_target(node, element, writers, allowed, flag)

    def _scan_call(self, node: ast.Call, writers, allowed, flag) -> None:
        # np.copyto(x.attr, ...) — any alias of numpy still ends .copyto.
        chain = attr_chain(node.func)
        if chain is not None and chain[-1] == "copyto" and node.args:
            attr = self._registered_attr(node.args[0], writers)
            if attr is not None and not allowed(attr):
                flag(node, attr, "np.copyto into")
            return
        # x.attr.fill(...) and friends: func is Attribute(mutator) whose
        # value reads a registered attribute.
        if isinstance(node.func, ast.Attribute) and (
            node.func.attr in _ARRAY_MUTATORS
        ):
            attr = self._registered_attr(node.func.value, writers)
            if attr is not None and not allowed(attr):
                flag(node, attr, f"in-place `{node.func.attr}` on")
