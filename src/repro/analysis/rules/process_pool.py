"""Rule ``process-pool``: worker processes only via ``repro.perf``.

Parallel campaign execution is byte-identical to serial *because* it is
centralised: :mod:`repro.perf.parallel` spawns ``spawn``-context
workers, seeds each cell's retry schedule from its content hash, and
merges results in canonical order.  An ad-hoc ``ProcessPoolExecutor``
(or ``multiprocessing`` pool / raw ``os.fork``) elsewhere would bypass
all of that - fork-context workers inherit the parent's RNG state and
held locks, and unmanaged completion order leaks into results.  Modules
inside ``repro.perf`` are exempt; anything else needs an explicit
pragma and a ``docs/lint.md`` entry.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding
from repro.analysis.rules._util import attr_chain, from_imports, module_aliases

#: ``concurrent.futures`` names that spawn worker processes.
BANNED_FUTURES = frozenset({"ProcessPoolExecutor"})

#: ``multiprocessing`` attributes that create processes or pools.
BANNED_MP = frozenset({"Pool", "Process", "get_context", "set_start_method"})

#: ``os`` functions that fork the interpreter.
BANNED_OS = frozenset({"fork", "forkpty"})


def _is_exempt(mod: ModuleInfo) -> bool:
    parts = mod.package_parts
    return len(parts) >= 2 and parts[0] == "repro" and parts[1] == "perf"


class ProcessPoolRule(Rule):
    id = "process-pool"
    description = (
        "no ProcessPoolExecutor/multiprocessing/os.fork outside "
        "repro.perf; parallelism must go through the deterministic pool"
    )

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        if _is_exempt(mod):
            return
        tree = mod.tree

        for module in ("concurrent.futures", "multiprocessing"):
            banned = BANNED_FUTURES if "futures" in module else BANNED_MP
            for name, _, lineno in from_imports(tree, module):
                if name in banned:
                    yield Finding(
                        rule=self.id,
                        path=mod.rel,
                        line=lineno,
                        message=(
                            f"`from {module} import {name}` spawns "
                            "worker processes outside repro.perf; use "
                            "repro.perf.parallel (deterministic spawn "
                            "pool) instead"
                        ),
                    )

        futures_aliases = module_aliases(
            tree, "concurrent.futures"
        ) | module_aliases(tree, "futures")
        mp_aliases = module_aliases(tree, "multiprocessing")
        os_aliases = module_aliases(tree, "os")
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None or len(chain) < 2:
                continue
            dotted = ".".join(chain)
            if (
                (chain[0] in futures_aliases and chain[-1] in BANNED_FUTURES)
                or (chain[0] in mp_aliases and chain[1] in BANNED_MP)
                or (chain[0] in os_aliases and chain[1] in BANNED_OS)
            ):
                yield self.finding(
                    mod,
                    node,
                    f"call to {dotted} spawns worker processes outside "
                    "repro.perf; use repro.perf.parallel (deterministic "
                    "spawn pool) instead",
                )
