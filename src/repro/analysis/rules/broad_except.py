"""Rule ``broad-except``: ``except Exception`` must feed the taxonomy.

PR 3 introduced a structured exception taxonomy
(:class:`repro.harness.errors.ReproError` and subclasses) so that every
failure in a campaign is classified, checkpointable provenance.  A
``except Exception:`` handler that logs-and-continues (or converts the
error into a return value) silently re-opens the hole: unclassified
failures flow onward with no taxonomy record.

A broad handler (``except Exception`` or ``except BaseException``,
alone or inside a tuple) is compliant only when its body raises one of
the taxonomy types - typically ``raise ReproError(...) from exc`` - so
the evidence is preserved in classified form.  A bare ``raise``
deliberately does *not* count: it re-raises the unclassified original,
which is exactly what the taxonomy boundary exists to prevent.  Sites
where deferred re-raising is the design (e.g. shipping an exception
across a watchdog thread boundary) carry
``# parmlint: ok[broad-except]`` next to a comment explaining why.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.engine import ModuleInfo, Rule
from repro.analysis.findings import Finding
from repro.analysis.rules._util import attr_chain

#: Exception names treated as "broad": they catch everything.
BROAD_NAMES = frozenset({"Exception", "BaseException"})

#: The repro error taxonomy (re-raising any of these is compliant).
TAXONOMY_ERRORS = frozenset(
    {
        "ReproError",
        "ConfigError",
        "SolverError",
        "SolverInputError",
        "SimTimeout",
        "WorkerCrash",
        "CheckpointCorrupt",
    }
)


def _terminal_name(node: ast.AST) -> str:
    """Last identifier of a name/attribute chain ('' when unresolvable)."""
    chain = attr_chain(node)
    return chain[-1] if chain else ""


def _caught_names(handler: ast.ExceptHandler) -> List[str]:
    """Exception-type names a handler catches (tuples flattened)."""
    if handler.type is None:
        return []
    if isinstance(handler.type, ast.Tuple):
        return [_terminal_name(el) for el in handler.type.elts]
    return [_terminal_name(handler.type)]


def _raises_taxonomy(handler: ast.ExceptHandler) -> bool:
    """True when the handler body raises a taxonomy error."""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc.func if isinstance(node.exc, ast.Call) else node.exc
            if _terminal_name(target) in TAXONOMY_ERRORS:
                return True
    return False


class BroadExceptRule(Rule):
    id = "broad-except"
    description = (
        "`except Exception` must re-raise a ReproError-taxonomy error "
        "(repro.harness.errors) or carry a pragma"
    )

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = [n for n in _caught_names(node) if n in BROAD_NAMES]
            if not broad or _raises_taxonomy(node):
                continue
            yield self.finding(
                mod,
                node,
                f"`except {broad[0]}` swallows the classification of "
                "failures; re-raise a ReproError subclass "
                "(repro.harness.errors) or annotate with "
                "`# parmlint: ok[broad-except]`",
            )
