"""The parmlint rule registry.

Adding a rule: subclass :class:`repro.analysis.engine.Rule` in a new
module here, give it a unique kebab-case ``id``, and append it to
:data:`ALL_RULES`.  The CLI, baseline, and pragma machinery pick it up
automatically; add a section to ``docs/lint.md`` and fixture tests in
``tests/analysis/``.
"""

from __future__ import annotations

from typing import List, Type

from repro.analysis.engine import Rule
from repro.analysis.rules.broad_except import BroadExceptRule
from repro.analysis.rules.float_eq import FloatEqRule
from repro.analysis.rules.import_cycle import ImportCycleRule
from repro.analysis.rules.mutable_default import MutableDefaultRule
from repro.analysis.rules.process_pool import ProcessPoolRule
from repro.analysis.rules.seed_provenance import SeedProvenanceRule
from repro.analysis.rules.seeded_rng import SeededRngRule
from repro.analysis.rules.set_iteration import SetIterationRule
from repro.analysis.rules.shared_readonly import SharedReadonlyRule
from repro.analysis.rules.silent_except import SilentExceptRule
from repro.analysis.rules.unit_suffix import UnitSuffixRule
from repro.analysis.rules.wall_clock import WallClockRule
from repro.analysis.rules.worker_safety import WorkerSafetyRule

#: Every registered rule class, in documentation order.
ALL_RULES: List[Type[Rule]] = [
    SeededRngRule,
    WallClockRule,
    FloatEqRule,
    SilentExceptRule,
    BroadExceptRule,
    MutableDefaultRule,
    UnitSuffixRule,
    ImportCycleRule,
    SetIterationRule,
    ProcessPoolRule,
    WorkerSafetyRule,
    SeedProvenanceRule,
    SharedReadonlyRule,
]


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in ALL_RULES]


__all__ = [
    "ALL_RULES",
    "BroadExceptRule",
    "FloatEqRule",
    "ImportCycleRule",
    "MutableDefaultRule",
    "ProcessPoolRule",
    "SeedProvenanceRule",
    "SeededRngRule",
    "SetIterationRule",
    "SharedReadonlyRule",
    "SilentExceptRule",
    "UnitSuffixRule",
    "WallClockRule",
    "WorkerSafetyRule",
    "default_rules",
]
