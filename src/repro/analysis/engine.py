"""Rule registry and visitor engine for parmlint.

The engine separates three concerns:

* **Discovery** — enumerate ``.py`` files under a root in sorted order
  (deterministic output is itself one of parmlint's rules, so the
  linter holds itself to it).
* **Parsing** — each file becomes a :class:`ModuleInfo` carrying its
  AST, dotted module name, and suppression-pragma index.  Files that do
  not parse yield a synthetic ``parse-error`` finding instead of
  crashing the run.
* **Checking** — every registered :class:`Rule` gets a per-module hook
  (:meth:`Rule.check_module`) and a whole-project hook
  (:meth:`Rule.check_project`, used by e.g. the import-cycle rule).
  :class:`ProjectRule` subclasses additionally receive a
  :class:`ProjectContext` carrying the interprocedural call graph
  (:mod:`repro.analysis.callgraph`), built once per run and shared by
  every such rule.

Findings suppressed by a pragma are counted but not reported; baseline
filtering happens in the CLI layer so library callers always see the
full picture.
"""

from __future__ import annotations

import ast
import importlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.analysis.pragmas import PragmaIndex, parse_pragmas

PARSE_ERROR_RULE = "parse-error"


@dataclass
class ModuleInfo:
    """One parsed source file, as seen by the rules."""

    path: Path
    rel: str
    module: str
    source: str
    tree: ast.Module
    pragmas: PragmaIndex

    @property
    def package_parts(self) -> Sequence[str]:
        """Dotted-name components, e.g. ``("repro", "pdn", "fast")``."""
        return tuple(self.module.split("."))


class Rule:
    """Base class for parmlint rules.

    Subclasses set :attr:`id`/:attr:`description` and override one (or
    both) of the check hooks.  Hooks yield raw findings; the engine
    applies pragma suppression afterwards, so rules never need to look
    at comments themselves.
    """

    id: str = "abstract"
    description: str = ""

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        return ()

    def check_project(self, mods: Sequence[ModuleInfo]) -> Iterable[Finding]:
        return ()

    def finding(self, mod: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=mod.rel,
            line=getattr(node, "lineno", 0),
            message=message,
        )


@dataclass
class ProjectContext:
    """Everything an interprocedural rule can see in one run.

    Attributes:
        modules: All parsed modules, in discovery (sorted-path) order.
        graph: The project :class:`repro.analysis.callgraph.CallGraph`
            (possibly loaded from cache).  Typed ``Any`` here because
            callgraph builds on this module; the engine loads it at run
            time (importlib) to keep the static import graph acyclic.
        functions: qname -> ``(ModuleInfo, ast node)`` for every
            callable in the project; always built fresh because cached
            graphs do not carry live AST nodes.
    """

    modules: Sequence[ModuleInfo]
    graph: Any
    functions: Dict[str, Tuple[ModuleInfo, ast.AST]]

    def module_for(self, rel: str) -> Optional[ModuleInfo]:
        for mod in self.modules:
            if mod.rel == rel:
                return mod
        return None


class ProjectRule(Rule):
    """A rule that consumes the interprocedural call graph.

    Registering at least one ProjectRule makes the engine build (or
    load from cache) the call graph once per run and hand it to every
    such rule via :meth:`check_graph`.  Findings flow through the same
    pragma-suppression and baseline machinery as any other rule: a
    ``# parmlint: ok[rule]`` pragma at the finding's (path, line) — by
    convention the *mutation/violation site*, not the root — suppresses
    it even when the reachability path spans several modules.
    """

    def check_graph(self, ctx: ProjectContext) -> Iterable[Finding]:
        return ()


@dataclass
class LintResult:
    """Outcome of one engine run (before baseline filtering)."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0


def _module_name(rel_posix: str) -> str:
    parts = rel_posix[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "__init__"


def discover_files(root: Path) -> List[Path]:
    """All ``.py`` files under ``root``, sorted for stable output."""
    return sorted(p for p in root.rglob("*.py") if p.is_file())


def load_module(path: Path, root: Path) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo`.

    Raises:
        SyntaxError: when the file does not parse; the engine converts
            this into a ``parse-error`` finding.
    """
    source = path.read_text()
    rel = path.relative_to(root.parent).as_posix()
    return ModuleInfo(
        path=path,
        rel=rel,
        module=_module_name(path.relative_to(root.parent).as_posix()),
        source=source,
        tree=ast.parse(source, filename=str(path)),
        pragmas=parse_pragmas(source),
    )


class LintEngine:
    """Applies a rule set to every Python file under a root directory.

    Args:
        rules: Rule instances to apply.  Rule ids must be unique.
    """

    def __init__(self, rules: Sequence[Rule]):
        seen = set()
        for rule in rules:
            if rule.id in seen:
                raise ValueError(f"duplicate rule id: {rule.id!r}")
            seen.add(rule.id)
        self._rules = list(rules)

    @property
    def rules(self) -> Sequence[Rule]:
        return tuple(self._rules)

    def run(self, root: Path, cache_dir: Optional[Path] = None) -> LintResult:
        """Lint every ``.py`` file under ``root`` (a package directory).

        Args:
            root: Package directory to lint.
            cache_dir: Optional directory for the call-graph artifact.
                Only consulted when a :class:`ProjectRule` is
                registered; ``None`` always builds the graph in memory.
        """
        result = LintResult()
        modules: List[ModuleInfo] = []
        for path in discover_files(root):
            result.files_checked += 1
            try:
                modules.append(load_module(path, root))
            except SyntaxError as exc:
                result.findings.append(
                    Finding(
                        rule=PARSE_ERROR_RULE,
                        path=path.relative_to(root.parent).as_posix(),
                        line=exc.lineno or 0,
                        message=f"file does not parse: {exc.msg}",
                    )
                )

        for mod in modules:
            for rule in self._rules:
                for finding in rule.check_module(mod):
                    if mod.pragmas.suppresses(finding.rule, finding.line):
                        result.suppressed += 1
                    else:
                        result.findings.append(finding)

        by_rel = {mod.rel: mod for mod in modules}

        def emit(finding: Finding) -> None:
            mod = by_rel.get(finding.path)
            if mod is not None and mod.pragmas.suppresses(
                finding.rule, finding.line
            ):
                result.suppressed += 1
            else:
                result.findings.append(finding)

        for rule in self._rules:
            for finding in rule.check_project(modules):
                emit(finding)

        project_rules = [r for r in self._rules if isinstance(r, ProjectRule)]
        if project_rules:
            # callgraph imports ModuleInfo from this module, so the
            # engine loads it at run time (importlib, as supervisor does
            # for the pool): the dependency is one-way per call and the
            # static import graph stays acyclic.
            callgraph = importlib.import_module("repro.analysis.callgraph")
            ctx = ProjectContext(
                modules=modules,
                graph=callgraph.project_graph(modules, cache_dir=cache_dir),
                functions=callgraph.index_functions(modules),
            )
            for rule in project_rules:
                for finding in rule.check_graph(ctx):
                    emit(finding)

        result.findings.sort(key=lambda f: f.sort_key)
        return result
