"""Rule registry and visitor engine for parmlint.

The engine separates three concerns:

* **Discovery** — enumerate ``.py`` files under a root in sorted order
  (deterministic output is itself one of parmlint's rules, so the
  linter holds itself to it).
* **Parsing** — each file becomes a :class:`ModuleInfo` carrying its
  AST, dotted module name, and suppression-pragma index.  Files that do
  not parse yield a synthetic ``parse-error`` finding instead of
  crashing the run.
* **Checking** — every registered :class:`Rule` gets a per-module hook
  (:meth:`Rule.check_module`) and a whole-project hook
  (:meth:`Rule.check_project`, used by e.g. the import-cycle rule).

Findings suppressed by a pragma are counted but not reported; baseline
filtering happens in the CLI layer so library callers always see the
full picture.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Sequence

from repro.analysis.findings import Finding
from repro.analysis.pragmas import PragmaIndex, parse_pragmas

PARSE_ERROR_RULE = "parse-error"


@dataclass
class ModuleInfo:
    """One parsed source file, as seen by the rules."""

    path: Path
    rel: str
    module: str
    source: str
    tree: ast.Module
    pragmas: PragmaIndex

    @property
    def package_parts(self) -> Sequence[str]:
        """Dotted-name components, e.g. ``("repro", "pdn", "fast")``."""
        return tuple(self.module.split("."))


class Rule:
    """Base class for parmlint rules.

    Subclasses set :attr:`id`/:attr:`description` and override one (or
    both) of the check hooks.  Hooks yield raw findings; the engine
    applies pragma suppression afterwards, so rules never need to look
    at comments themselves.
    """

    id: str = "abstract"
    description: str = ""

    def check_module(self, mod: ModuleInfo) -> Iterable[Finding]:
        return ()

    def check_project(self, mods: Sequence[ModuleInfo]) -> Iterable[Finding]:
        return ()

    def finding(self, mod: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=mod.rel,
            line=getattr(node, "lineno", 0),
            message=message,
        )


@dataclass
class LintResult:
    """Outcome of one engine run (before baseline filtering)."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0


def _module_name(rel_posix: str) -> str:
    parts = rel_posix[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "__init__"


def discover_files(root: Path) -> List[Path]:
    """All ``.py`` files under ``root``, sorted for stable output."""
    return sorted(p for p in root.rglob("*.py") if p.is_file())


def load_module(path: Path, root: Path) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo`.

    Raises:
        SyntaxError: when the file does not parse; the engine converts
            this into a ``parse-error`` finding.
    """
    source = path.read_text()
    rel = path.relative_to(root.parent).as_posix()
    return ModuleInfo(
        path=path,
        rel=rel,
        module=_module_name(path.relative_to(root.parent).as_posix()),
        source=source,
        tree=ast.parse(source, filename=str(path)),
        pragmas=parse_pragmas(source),
    )


class LintEngine:
    """Applies a rule set to every Python file under a root directory.

    Args:
        rules: Rule instances to apply.  Rule ids must be unique.
    """

    def __init__(self, rules: Sequence[Rule]):
        seen = set()
        for rule in rules:
            if rule.id in seen:
                raise ValueError(f"duplicate rule id: {rule.id!r}")
            seen.add(rule.id)
        self._rules = list(rules)

    @property
    def rules(self) -> Sequence[Rule]:
        return tuple(self._rules)

    def run(self, root: Path) -> LintResult:
        """Lint every ``.py`` file under ``root`` (a package directory)."""
        result = LintResult()
        modules: List[ModuleInfo] = []
        for path in discover_files(root):
            result.files_checked += 1
            try:
                modules.append(load_module(path, root))
            except SyntaxError as exc:
                result.findings.append(
                    Finding(
                        rule=PARSE_ERROR_RULE,
                        path=path.relative_to(root.parent).as_posix(),
                        line=exc.lineno or 0,
                        message=f"file does not parse: {exc.msg}",
                    )
                )

        for mod in modules:
            for rule in self._rules:
                for finding in rule.check_module(mod):
                    if mod.pragmas.suppresses(finding.rule, finding.line):
                        result.suppressed += 1
                    else:
                        result.findings.append(finding)

        by_rel = {mod.rel: mod for mod in modules}
        for rule in self._rules:
            for finding in rule.check_project(modules):
                mod = by_rel.get(finding.path)
                if mod is not None and mod.pragmas.suppresses(
                    finding.rule, finding.line
                ):
                    result.suppressed += 1
                else:
                    result.findings.append(finding)

        result.findings.sort(key=lambda f: f.sort_key)
        return result
