"""Baseline ("ratchet") file for grandfathered findings.

The baseline lets the lint gate be adopted on a codebase with known
findings: existing violations are recorded once, the CI job fails only
on *new* findings, and the file shrinks as old findings are fixed.

Format — deliberately stable and diff-reviewable:

* JSON object with a ``version`` and a sorted ``findings`` array;
* one object per finding carrying the fingerprint fields *and* the
  message (the message is informational — only ``path``/``line``/
  ``rule`` participate in matching);
* trailing newline, two-space indent, keys sorted.

Regenerate with ``python -m repro lint --write-baseline`` after fixing
or intentionally introducing findings; the diff then shows exactly what
was added or removed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import FrozenSet, Iterable, List

from repro.analysis.findings import Finding

BASELINE_VERSION = 1

#: Default location, relative to the repository root.
DEFAULT_BASELINE_NAME = ".parmlint-baseline.json"


def load_baseline(path: Path) -> FrozenSet[str]:
    """Return the set of baselined fingerprints (empty if absent)."""
    if not path.exists():
        return frozenset()
    data = json.loads(path.read_text())
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path}; "
            f"expected {BASELINE_VERSION} — regenerate with "
            "`python -m repro lint --write-baseline`"
        )
    return frozenset(
        f"{entry['path']}:{entry['line']}:{entry['rule']}"
        for entry in data.get("findings", [])
    )


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Serialise ``findings`` as the new baseline (sorted, stable)."""
    entries: List[dict] = [
        {
            "line": f.line,
            "message": f.message,
            "path": f.path,
            "rule": f.rule,
        }
        for f in sorted(findings, key=lambda f: f.sort_key)
    ]
    payload = {"findings": entries, "version": BASELINE_VERSION}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
