"""Task scheduling: per-task deadline assignment and EDF list scheduling.

After PARM maps an application (Section 4.2), its tasks are scheduled with
earliest-deadline-first; each task's deadline is derived from the
application deadline using the critical-path technique of the authors'
prior work [23].
"""

from repro.sched.deadlines import assign_task_deadlines
from repro.sched.edf import EdfSchedule, ScheduledTask, edf_schedule

__all__ = [
    "assign_task_deadlines",
    "EdfSchedule",
    "ScheduledTask",
    "edf_schedule",
]
