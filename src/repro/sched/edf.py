"""Earliest-deadline-first list scheduling of an application graph.

The scheduler places the tasks of one application onto ``core_count``
cores.  A task becomes ready when all predecessors have finished and
their output data has traversed the NoC (modelled as a per-byte
communication delay, zero for tasks sharing a core).  Among ready tasks,
the one with the earliest deadline runs first (EDF).

In PARM's normal operation every thread has a dedicated core
(``core_count == task_count``), in which case EDF degenerates to
dataflow-driven execution and the makespan equals the communication-aware
critical path; the general scheduler also supports fewer cores than tasks,
which the tests exercise.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.graph import ApplicationGraph
from repro.sched.deadlines import assign_task_deadlines


@dataclass(frozen=True)
class ScheduledTask:
    """Placement of one task in the schedule (times in seconds)."""

    task_id: int
    core: int
    start: float
    finish: float
    deadline: float


@dataclass(frozen=True)
class EdfSchedule:
    """Result of EDF scheduling one application.

    Attributes:
        tasks: Scheduled tasks in start-time order.
        makespan: Completion time of the last task (seconds).
        deadline_met: Whether every task finished by its deadline.
    """

    tasks: Tuple[ScheduledTask, ...]
    makespan: float
    deadline_met: bool

    def by_task(self) -> Dict[int, ScheduledTask]:
        return {t.task_id: t for t in self.tasks}


def edf_schedule(
    graph: ApplicationGraph,
    core_count: int,
    task_time: Callable[[int], float],
    comm_delay: Optional[Callable[[int, int], float]] = None,
    app_deadline: Optional[float] = None,
) -> EdfSchedule:
    """Schedule an application graph on ``core_count`` cores with EDF.

    Args:
        graph: The application graph.
        core_count: Number of cores available to the application.
        task_time: Execution time of each task in seconds.
        comm_delay: Delay for the edge ``(src, dst)`` in seconds, applied
            when the two tasks run on different cores; ``None`` means no
            communication delay.
        app_deadline: Application deadline used to derive per-task EDF
            priorities; defaults to the sum of all task times (priorities
            only order execution, so the scale is irrelevant).

    Returns:
        The :class:`EdfSchedule`.
    """
    if core_count < 1:
        raise ValueError("core_count must be at least 1")
    if graph.task_count == 0:
        return EdfSchedule(tasks=(), makespan=0.0, deadline_met=True)

    if app_deadline is None:
        app_deadline = sum(task_time(t.task_id) for t in graph.tasks()) or 1.0
    deadlines = assign_task_deadlines(graph, app_deadline, task_time)

    pending_preds = {
        t.task_id: len(graph.predecessors(t.task_id)) for t in graph.tasks()
    }
    finish_time: Dict[int, float] = {}
    core_of: Dict[int, int] = {}
    core_free = [0.0] * core_count
    # Ready heap keyed by (deadline, task id) for deterministic EDF order.
    ready: List[Tuple[float, int, float]] = []  # (deadline, task, earliest start)
    for t, n in pending_preds.items():
        if n == 0:
            heapq.heappush(ready, (deadlines[t], t, 0.0))

    scheduled: List[ScheduledTask] = []
    while ready:
        deadline, task, earliest = heapq.heappop(ready)
        # Pick the core that lets the task start soonest (ties: lowest id).
        core = min(range(core_count), key=lambda c: (max(core_free[c], earliest), c))
        start = max(core_free[core], earliest)
        finish = start + task_time(task)
        core_free[core] = finish
        finish_time[task] = finish
        core_of[task] = core
        scheduled.append(
            ScheduledTask(
                task_id=task,
                core=core,
                start=start,
                finish=finish,
                deadline=deadline,
            )
        )
        for succ in graph.successors(task):
            pending_preds[succ] -= 1
            if pending_preds[succ] == 0:
                est = 0.0
                for pred in graph.predecessors(succ):
                    delay = 0.0
                    if comm_delay is not None and core_of[pred] != _planned_core(
                        core_of, succ
                    ):
                        delay = comm_delay(pred, succ)
                    est = max(est, finish_time[pred] + delay)
                heapq.heappush(ready, (deadlines[succ], succ, est))

    makespan = max(t.finish for t in scheduled)
    met = all(t.finish <= t.deadline + 1e-12 for t in scheduled)
    return EdfSchedule(
        tasks=tuple(sorted(scheduled, key=lambda t: (t.start, t.task_id))),
        makespan=makespan,
        deadline_met=met,
    )


def _planned_core(core_of: Dict[int, int], task: int) -> int:
    """Core a not-yet-scheduled task will run on (-1 = unknown).

    The core of a successor is unknown when its readiness is computed, so
    communication from a predecessor is charged unless the successor was
    already placed (which cannot happen in topological processing); the
    conservative result is that cross-task edges always pay the NoC delay,
    matching the paper's one-thread-per-core execution model.
    """
    return core_of.get(task, -1)
