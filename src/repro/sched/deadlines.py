"""Per-task deadline (priority) assignment from an application deadline.

Following the critical-path technique of the paper's reference [23]: each
task's deadline is the application deadline scaled by the task's position
along its longest (work-weighted) path - a task must finish early enough
to leave its longest downstream chain enough time.

Concretely, with ``up(t)`` the longest path length from any source up to
and including ``t`` and ``down(t)`` the longest path length from ``t``
(exclusive) to any sink::

    deadline(t) = app_deadline * up(t) / (up(t) + down(t))

Tasks on the critical path get ``up + down == critical path length``, so
their deadlines subdivide the application deadline proportionally to
progress along the path.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.apps.graph import ApplicationGraph


def assign_task_deadlines(
    graph: ApplicationGraph,
    app_deadline: float,
    task_time: Callable[[int], float],
) -> Dict[int, float]:
    """Map each task id to its deadline.

    Args:
        graph: The application graph.
        app_deadline: Deadline of the whole application (seconds, relative
            to the application's start).
        task_time: Execution-time estimate of one task (seconds); used as
            the path weight.

    Returns:
        Dict of task id to deadline in the same time unit as
        ``app_deadline``.
    """
    if app_deadline <= 0:
        raise ValueError("app_deadline must be positive")
    order = graph.topological_order()

    up: Dict[int, float] = {}
    for t in order:
        preds = graph.predecessors(t)
        up[t] = task_time(t) + (max(up[p] for p in preds) if preds else 0.0)

    down: Dict[int, float] = {}
    for t in reversed(order):
        succs = graph.successors(t)
        down[t] = (
            max(task_time(s) + down[s] for s in succs) if succs else 0.0
        )

    deadlines: Dict[int, float] = {}
    for t in order:
        total = up[t] + down[t]
        if total <= 0:
            deadlines[t] = app_deadline
        else:
            deadlines[t] = app_deadline * up[t] / total
    return deadlines
