"""A small SPICE-like transient circuit solver (modified nodal analysis).

Supports resistors, capacitors, inductors, independent voltage sources and
independent (optionally time-varying) current sources.  Transient analysis
integrates with the trapezoidal rule (default, accurate for the lightly
damped RLC tanks of a power-delivery network) or backward Euler, starting
from the DC operating point so that start-up transients do not pollute
peak-noise measurements.

The implementation is standard MNA: one unknown per non-ground node voltage
plus one branch-current unknown per voltage source and per inductor.  The
system matrix is constant for a fixed timestep, so it is factorised once
(sparse LU) and only the right-hand side is rebuilt each step.

Example:
    >>> c = Circuit()
    >>> c.vsource("vin", "gnd", 1.0)
    >>> c.resistor("vin", "out", 100.0)
    >>> c.capacitor("out", "gnd", 1e-6)
    >>> result = c.transient(duration=1e-3, dt=1e-6)
    >>> abs(result.voltage("out")[-1] - 1.0) < 1e-3
    True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.harness.errors import SolverError, SolverInputError

#: The ground node name.  Node "0" is accepted as an alias.
GROUND = "gnd"

#: Condition-number estimates above this mark the MNA system as
#: numerically untrustworthy (double precision keeps ~15-16 digits, so
#: 1e13 leaves ~3 digits of headroom in the solution).
DEFAULT_MAX_CONDITION = 1e13

#: Node-voltage magnitudes above this mark a diverging (ringing /
#: non-convergent) integration.  PDN rails sit around 1 V, so the
#: default is generous enough for any sane linear circuit while still
#: catching blow-ups long before they overflow to inf.
DEFAULT_MAX_ABS_V = 1e6


def _condition_estimate(matrix: sp.csc_matrix, lu) -> float:
    """Cheap 1-norm condition estimate of a factorised sparse matrix.

    Uses Higham's ``onenormest`` on the inverse operator (a handful of
    extra triangular solves) against the explicit 1-norm of the matrix;
    tiny systems fall back to a dense exact computation because the
    estimator needs more columns than they have.
    """
    size = matrix.shape[0]
    if size <= 4:
        return float(np.linalg.cond(matrix.toarray(), 1))
    inv_op = spla.LinearOperator(
        (size, size), matvec=lu.solve, rmatvec=lambda b: lu.solve(b, "T")
    )
    inv_norm = spla.onenormest(inv_op)
    return float(spla.norm(matrix, 1) * inv_norm)


def _stamp_dense(a: np.ndarray, i: Optional[int], j: Optional[int], y) -> None:
    """Stamp a two-terminal admittance into a dense (complex) matrix."""
    if i is not None:
        a[i, i] += y
    if j is not None:
        a[j, j] += y
    if i is not None and j is not None:
        a[i, j] -= y
        a[j, i] -= y

Waveform = Union[float, Callable[[np.ndarray], np.ndarray]]

#: Bump this whenever the numerics of the transient solver change
#: (integration stamps, guard behaviour, companion models...).  On-disk
#: caches of solver-derived artifacts (see :mod:`repro.perf.cache`) key
#: on it so stale fits are invalidated by a solver upgrade.
#: v3: the per-step scatter/gather loops became precomputed sparse
#: operators (summation order changed at double precision).
SOLVER_VERSION = 3


@dataclass
class _TransientPlan:
    """Reusable state of one transient configuration of a netlist.

    Everything here depends only on the element topology/values and the
    ``(method, dt)`` pair - *not* on source waveforms or voltage-source
    values, which enter the MNA system through the right-hand side only.
    Caching the plan therefore lets one factorisation serve arbitrarily
    many waveforms and supply voltages.
    """

    method: str
    dt_s: float
    n: int
    n_l: int
    n_v: int
    size: int
    lu: object
    condition_ratio: float
    cap_g: np.ndarray
    ind_r: np.ndarray
    cap_a: np.ndarray
    cap_b: np.ndarray
    ind_a: np.ndarray
    ind_b: np.ndarray
    isrc_f: np.ndarray
    isrc_t: np.ndarray
    # Precomputed step operators (see _transient_plan): source scatter
    # (size, n_src, sparse - applied once per solve over the whole
    # window), capacitor history scatter (size, n_cap) and the
    # capacitor / inductor terminal-difference gathers.  The three
    # per-step operators are dense ndarrays for ordinary circuit sizes
    # (scipy's sparse matvec dispatch costs more than the product
    # itself there) and stay sparse only for very large systems.
    src_mat: object = None
    cap_mat: object = None
    cap_diff: object = None
    ind_diff: object = None

    #: Plan arrays are shared read-only with pool workers (warm-pool
    #: plan); parmlint's shared-readonly rule bans writes after
    #: construction.  (Unannotated class attr: not a dataclass field.)
    __shared_readonly__ = (
        "cap_g",
        "ind_r",
        "cap_a",
        "cap_b",
        "ind_a",
        "ind_b",
        "isrc_f",
        "isrc_t",
        "src_mat",
        "cap_mat",
        "cap_diff",
        "ind_diff",
    )


@dataclass
class _Resistor:
    a: str
    b: str
    ohms: float


@dataclass
class _Capacitor:
    a: str
    b: str
    farads: float


@dataclass
class _Inductor:
    a: str
    b: str
    henries: float


@dataclass
class _VSource:
    pos: str
    neg: str
    volts: float


@dataclass
class _ISource:
    frm: str
    to: str
    waveform: Waveform


@dataclass(frozen=True)
class TransientResult:
    """Node voltages over time from a transient analysis.

    Attributes:
        time: Sample instants, shape ``(n_steps + 1,)``; ``time[0] == 0``.
        voltages: Node voltage samples, shape ``(n_steps + 1, n_nodes)``.
        node_order: Node name per column of ``voltages``.
    """

    time: np.ndarray
    voltages: np.ndarray
    node_order: Sequence[str]
    _index: Dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_index", {name: i for i, name in enumerate(self.node_order)}
        )

    def voltage(self, node: str) -> np.ndarray:
        """Voltage trace of one node (ground returns zeros)."""
        if node in (GROUND, "0"):
            return np.zeros_like(self.time)
        try:
            return self.voltages[:, self._index[node]]
        except KeyError:
            raise KeyError(f"unknown node {node!r}")


class Circuit:
    """A netlist of linear elements with MNA-based DC and transient solves."""

    def __init__(self) -> None:
        self._resistors: List[_Resistor] = []
        self._capacitors: List[_Capacitor] = []
        self._inductors: List[_Inductor] = []
        self._vsources: List[_VSource] = []
        self._isources: List[_ISource] = []
        self._nodes: Dict[str, int] = {}
        # Netlist revision counter: bumped by every element addition so
        # cached factorisation plans know when they are stale.
        self._rev = 0
        self._plan_rev = -1
        self._plans: Dict[tuple, _TransientPlan] = {}
        self._dc_rev = -1
        self._dc_lu: Optional[object] = None

    # ------------------------------------------------------------------
    # Netlist construction
    # ------------------------------------------------------------------

    def resistor(self, a: str, b: str, ohms: float) -> None:
        """Add a resistor between nodes ``a`` and ``b``."""
        if ohms <= 0:
            raise ValueError(f"resistance must be positive, got {ohms}")
        self._touch(a), self._touch(b)
        self._resistors.append(_Resistor(a, b, ohms))
        self._rev += 1

    def capacitor(self, a: str, b: str, farads: float) -> None:
        """Add a capacitor between nodes ``a`` and ``b``."""
        if farads <= 0:
            raise ValueError(f"capacitance must be positive, got {farads}")
        self._touch(a), self._touch(b)
        self._capacitors.append(_Capacitor(a, b, farads))
        self._rev += 1

    def inductor(self, a: str, b: str, henries: float) -> None:
        """Add an inductor between nodes ``a`` and ``b``."""
        if henries <= 0:
            raise ValueError(f"inductance must be positive, got {henries}")
        self._touch(a), self._touch(b)
        self._inductors.append(_Inductor(a, b, henries))
        self._rev += 1

    def vsource(self, pos: str, neg: str, volts: float) -> None:
        """Add an ideal DC voltage source; ``pos`` is ``volts`` above ``neg``."""
        self._touch(pos), self._touch(neg)
        self._vsources.append(_VSource(pos, neg, volts))
        self._rev += 1

    def isource(self, frm: str, to: str, waveform: Waveform) -> None:
        """Add a current source driving current from node ``frm`` to ``to``.

        A chip workload drawing supply current is ``isource(tile, GROUND, i)``.

        Args:
            frm: Node the current is pulled out of.
            to: Node the current is pushed into.
            waveform: Either a constant (amperes) or a vectorised callable
                mapping a time array (seconds) to a current array.
        """
        self._touch(frm), self._touch(to)
        self._isources.append(_ISource(frm, to, waveform))
        self._rev += 1

    @property
    def node_names(self) -> List[str]:
        """Non-ground node names in insertion order."""
        return list(self._nodes)

    def _touch(self, node: str) -> None:
        if node in (GROUND, "0"):
            return
        if node not in self._nodes:
            self._nodes[node] = len(self._nodes)

    def _idx(self, node: str) -> Optional[int]:
        if node in (GROUND, "0"):
            return None
        return self._nodes[node]

    # ------------------------------------------------------------------
    # Solvers
    # ------------------------------------------------------------------

    def operating_point(self, at_time: float = 0.0) -> Dict[str, float]:
        """DC operating point: capacitors open, inductors shorted.

        Time-varying current sources are evaluated at ``at_time``.

        Returns:
            Mapping of node name to DC voltage.
        """
        x = self._solve_dc(at_time)
        n = len(self._nodes)
        return {name: float(x[i]) for name, i in self._nodes.items() if i < n}

    def transient(
        self,
        duration: float,
        dt: float,
        method: str = "trapezoidal",
        max_condition: float = DEFAULT_MAX_CONDITION,
        max_abs_v: float = DEFAULT_MAX_ABS_V,
        isource_waveforms: Optional[Sequence[Waveform]] = None,
        vsource_values: Optional[Sequence[float]] = None,
    ) -> TransientResult:
        """Run a fixed-step transient analysis from the DC operating point.

        The solve is numerically guarded: a singular or ill-conditioned
        MNA system, a NaN/inf source current, and a non-finite or
        diverging node voltage all raise
        :class:`~repro.harness.errors.SolverError` carrying the
        offending node and step, instead of propagating a raw
        ``LinAlgError`` or silently returning garbage.

        The constant MNA matrix and its sparse-LU factorisation are
        cached per ``(method, dt)`` on the circuit (invalidated by any
        netlist change), so repeated solves of the same topology - e.g.
        sweeping waveforms or supply voltages via the override
        parameters - factorise once and only rebuild the right-hand
        side.

        Args:
            duration: Total simulated time in seconds.
            dt: Timestep in seconds.
            method: ``"trapezoidal"`` (default) or ``"backward-euler"``.
            max_condition: Reject factorisations whose 1-norm condition
                estimate exceeds this (``inf`` disables the check).
            max_abs_v: Node-voltage magnitude treated as divergence
                (``inf`` disables the check).
            isource_waveforms: When given, use these waveforms (one per
                current source, in insertion order) instead of the
                netlist's own - sources enter through the right-hand
                side only, so this reuses the cached factorisation.
            vsource_values: When given, override the voltage-source
                values (one per source, in insertion order); same
                factorisation-reuse property as the waveform override.

        Returns:
            A :class:`TransientResult` with all node voltages.

        Raises:
            SolverError: on a singular/ill-conditioned system, non-finite
                source currents, or non-finite/diverging node voltages.
        """
        if duration <= 0 or dt <= 0:
            raise ValueError("duration and dt must be positive")
        if method not in ("trapezoidal", "backward-euler"):
            raise ValueError(f"unknown integration method {method!r}")
        if not self._nodes:
            raise ValueError("circuit has no nodes")
        waveforms: Sequence[Waveform]
        if isource_waveforms is None:
            waveforms = [s.waveform for s in self._isources]
        else:
            if len(isource_waveforms) != len(self._isources):
                raise ValueError(
                    f"expected {len(self._isources)} waveform overrides, "
                    f"got {len(isource_waveforms)}"
                )
            waveforms = list(isource_waveforms)
        if vsource_values is None:
            vsrc_vals = np.array([v.volts for v in self._vsources])
        else:
            if len(vsource_values) != len(self._vsources):
                raise ValueError(
                    f"expected {len(self._vsources)} vsource overrides, "
                    f"got {len(vsource_values)}"
                )
            vsrc_vals = np.asarray(vsource_values, dtype=float)
        trap = method == "trapezoidal"

        plan = self._transient_plan(method, dt)
        if not np.isfinite(plan.condition_ratio) or (
            plan.condition_ratio > max_condition
        ):
            raise SolverError(
                "ill-conditioned MNA system matrix",
                condition_estimate=float(plan.condition_ratio),
                max_condition=max_condition,
                method=method,
                dt_s=dt,
            )
        n, n_l = plan.n, plan.n_l
        size = plan.size
        n_steps = int(round(duration / dt))
        times = np.arange(n_steps + 1) * dt

        # --- precompute source currents over the whole window ----------
        i_wave = np.empty((len(waveforms), n_steps + 1))
        for k, w in enumerate(waveforms):
            if callable(w):
                i_wave[k] = np.asarray(w(times), dtype=float)
            else:
                i_wave[k] = float(w)
        bad_wave = ~np.isfinite(i_wave)
        if bad_wave.any():
            k, step = (int(v) for v in np.argwhere(bad_wave)[0])
            # Input data, not numerics: no method/timestep change can
            # fix a poisoned waveform, so fallback ladders re-raise.
            raise SolverInputError(
                "non-finite source current waveform",
                node=self._isources[k].frm,
                step=step,
                time_s=float(times[step]),
                method=method,
            )

        # --- initial condition: DC operating point at t=0 --------------
        x = self._dc_state(i_wave[:, 0], n, n_l, len(self._vsources),
                           vsrc_vals=vsrc_vals)
        out = np.empty((n_steps + 1, n))
        out[0] = x[:n]

        cap_g, ind_r = plan.cap_g, plan.ind_r
        cap_mat, cap_diff = plan.cap_mat, plan.cap_diff
        ind_diff = plan.ind_diff
        lu = plan.lu
        n_cap = len(self._capacitors)

        # State-independent right-hand sides for every step at once: the
        # current-source scatter is one sparse matmul over the whole
        # window, and the voltage-source rows are constant.  Only the
        # capacitor/inductor history terms remain in the step loop.
        rhs_steps = np.ascontiguousarray((plan.src_mat @ i_wave).T)
        rhs_steps[:, n + n_l:] = vsrc_vals

        # Capacitor branch current at t=0 (zero at DC steady state).
        cap_i = np.zeros(n_cap)
        cap_v = cap_diff @ x

        states = np.empty((n_steps + 1, size))
        states[0] = x
        # A diverging integration may overflow to inf/nan mid-window;
        # the guard below names the first offending step, so arithmetic
        # on the later poisoned steps must not warn.
        with np.errstate(over="ignore", invalid="ignore"):
            for step in range(1, n_steps + 1):
                rhs = rhs_steps[step]
                # Capacitor history currents (Norton companion).
                if n_cap:
                    rhs += cap_mat @ (cap_g * cap_v + (cap_i if trap else 0.0))
                # Inductor history voltages.
                if n_l:
                    rhs[n:n + n_l] = -ind_r * x[n:n + n_l] - (
                        (ind_diff @ x) if trap else 0.0
                    )
                x = lu.solve(rhs)
                states[step] = x
                if n_cap:
                    new_cap_v = cap_diff @ x
                    if trap:
                        cap_i = cap_g * (new_cap_v - cap_v) - cap_i
                    cap_v = new_cap_v

        self._check_trajectory(states, n, times, method, max_abs_v)
        out[1:] = states[1:, :n]

        return TransientResult(
            time=times, voltages=out, node_order=list(self._nodes)
        )

    def _transient_plan(self, method: str, dt: float) -> _TransientPlan:
        """Build (or fetch the cached) factorisation plan for (method, dt)."""
        if self._plan_rev != self._rev:
            self._plans.clear()
            self._plan_rev = self._rev
        plan = self._plans.get((method, dt))
        if plan is not None:
            return plan
        trap = method == "trapezoidal"

        n = len(self._nodes)
        n_l = len(self._inductors)
        n_v = len(self._vsources)
        size = n + n_l + n_v

        # --- constant system matrix -----------------------------------
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []

        def stamp(i: Optional[int], j: Optional[int], v: float) -> None:
            if i is not None and j is not None:
                rows.append(i)
                cols.append(j)
                vals.append(v)

        for r in self._resistors:
            g = 1.0 / r.ohms
            a, b = self._idx(r.a), self._idx(r.b)
            stamp(a, a, g), stamp(b, b, g)
            stamp(a, b, -g), stamp(b, a, -g)

        # Capacitor companion conductance: C/dt (BE) or 2C/dt (trapezoidal).
        cap_scale = 2.0 / dt if trap else 1.0 / dt
        cap_g = np.array([c.farads * cap_scale for c in self._capacitors])
        for c, g in zip(self._capacitors, cap_g):
            a, b = self._idx(c.a), self._idx(c.b)
            stamp(a, a, g), stamp(b, b, g)
            stamp(a, b, -g), stamp(b, a, -g)

        # Inductor branch rows: v_a - v_b - R_L * i = rhs_hist, where
        # R_L = 2L/dt (trapezoidal) or L/dt (BE).
        ind_scale = 2.0 / dt if trap else 1.0 / dt
        ind_r = np.array([l.henries * ind_scale for l in self._inductors])
        for k, (l, r_l) in enumerate(zip(self._inductors, ind_r)):
            row = n + k
            a, b = self._idx(l.a), self._idx(l.b)
            # KCL: branch current leaves a, enters b.
            stamp(a, row, 1.0), stamp(b, row, -1.0)
            # Branch equation.
            stamp(row, a, 1.0), stamp(row, b, -1.0)
            stamp(row, row, -r_l)

        for k, v in enumerate(self._vsources):
            row = n + n_l + k
            p, q = self._idx(v.pos), self._idx(v.neg)
            stamp(p, row, 1.0), stamp(q, row, -1.0)
            stamp(row, p, 1.0), stamp(row, q, -1.0)

        matrix = sp.csc_matrix(
            (vals, (rows, cols)), shape=(size, size), dtype=float
        )
        try:
            lu = spla.splu(matrix)
        except RuntimeError as exc:
            raise SolverError(
                "singular MNA system matrix - check for floating nodes, "
                "voltage-source loops, or degenerate element values",
                method=method,
                dt_s=dt,
                size=size,
            ) from exc
        cond = _condition_estimate(matrix, lu)

        def incidence(idx_pairs, shape, transpose=False):
            """Signed incidence operator from (index array, sign) pairs.

            Entry ``(idx[k], k)`` (or ``(k, idx[k])`` when transposed)
            holds ``sign``; ``-1`` indices (ground terminals) are
            dropped, matching the masked ``np.add.at`` scatters and the
            zero-filled ``node_v`` gathers this replaces.
            """
            r: List[int] = []
            c: List[int] = []
            v: List[float] = []
            for idx, sign in idx_pairs:
                for k, i in enumerate(idx):
                    if i >= 0:
                        r.append(k if transpose else i)
                        c.append(i if transpose else k)
                        v.append(sign)
            mat = sp.csr_matrix((v, (r, c)), shape=shape, dtype=float)
            # Dense below ~2 MB: the step loop applies these operators
            # thousands of times and numpy's dense matvec has far lower
            # fixed dispatch cost than scipy's sparse one.
            if shape[0] * shape[1] <= 262_144:
                return mat.toarray()
            return mat

        cap_a = np.array(
            [self._idx(c.a) if self._idx(c.a) is not None else -1
             for c in self._capacitors], dtype=int)
        cap_b = np.array(
            [self._idx(c.b) if self._idx(c.b) is not None else -1
             for c in self._capacitors], dtype=int)
        ind_a = np.array(
            [self._idx(l.a) if self._idx(l.a) is not None else -1
             for l in self._inductors], dtype=int)
        ind_b = np.array(
            [self._idx(l.b) if self._idx(l.b) is not None else -1
             for l in self._inductors], dtype=int)
        isrc_f = np.array(
            [self._idx(s.frm) if self._idx(s.frm) is not None else -1
             for s in self._isources], dtype=int)
        isrc_t = np.array(
            [self._idx(s.to) if self._idx(s.to) is not None else -1
             for s in self._isources], dtype=int)
        n_cap = len(self._capacitors)
        n_src = len(self._isources)

        plan = _TransientPlan(
            method=method,
            dt_s=dt,
            n=n,
            n_l=n_l,
            n_v=n_v,
            size=size,
            lu=lu,
            condition_ratio=float(cond),
            cap_g=cap_g,
            ind_r=ind_r,
            cap_a=cap_a,
            cap_b=cap_b,
            ind_a=ind_a,
            ind_b=ind_b,
            isrc_f=isrc_f,
            isrc_t=isrc_t,
            src_mat=incidence(
                ((isrc_f, -1.0), (isrc_t, 1.0)), (size, n_src)
            ),
            cap_mat=incidence(
                ((cap_a, 1.0), (cap_b, -1.0)), (size, n_cap)
            ),
            cap_diff=incidence(
                ((cap_a, 1.0), (cap_b, -1.0)), (n_cap, size), transpose=True
            ),
            ind_diff=incidence(
                ((ind_a, 1.0), (ind_b, -1.0)), (n_l, size), transpose=True
            ),
        )
        self._plans[(method, dt)] = plan
        return plan

    def ac_impedance(
        self, node: str, frequencies_hz: Sequence[float]
    ) -> np.ndarray:
        """Small-signal input impedance |Z(f)| seen at a node, in ohms.

        The standard PDN characterisation: inject a 1 A AC current into
        ``node`` (voltage sources shorted), solve the complex MNA system
        at each frequency, and read back the node voltage - its magnitude
        is the impedance.  The peak of the curve marks the bump-L /
        decap-C anti-resonance that workload current edges excite.

        Args:
            node: Node to probe (not ground).
            frequencies_hz: Frequencies to sweep, each > 0.

        Returns:
            ``|Z|`` per frequency, same length as ``frequencies_hz``.
        """
        if node in (GROUND, "0"):
            raise ValueError("cannot probe the ground node")
        if node not in self._nodes:
            raise KeyError(f"unknown node {node!r}")
        freqs = np.asarray(list(frequencies_hz), dtype=float)
        if freqs.size == 0 or np.any(freqs <= 0):
            raise ValueError("frequencies must be positive")

        n = len(self._nodes)
        n_l = len(self._inductors)
        n_v = len(self._vsources)
        size = n + n_l + n_v
        probe = self._nodes[node]

        out = np.empty(freqs.size)
        for i, f in enumerate(freqs):
            omega = 2.0 * np.pi * f
            a = np.zeros((size, size), dtype=complex)
            for r in self._resistors:
                g = 1.0 / r.ohms
                pa, pb = self._idx(r.a), self._idx(r.b)
                _stamp_dense(a, pa, pb, g)
            for c in self._capacitors:
                y = 1j * omega * c.farads
                pa, pb = self._idx(c.a), self._idx(c.b)
                _stamp_dense(a, pa, pb, y)
            for k, l in enumerate(self._inductors):
                row = n + k
                pa, pb = self._idx(l.a), self._idx(l.b)
                if pa is not None:
                    a[pa, row] += 1.0
                    a[row, pa] += 1.0
                if pb is not None:
                    a[pb, row] -= 1.0
                    a[row, pb] -= 1.0
                a[row, row] -= 1j * omega * l.henries
            for k, _v in enumerate(self._vsources):
                row = n + n_l + k
                p, q = self._idx(_v.pos), self._idx(_v.neg)
                if p is not None:
                    a[p, row] += 1.0
                    a[row, p] += 1.0
                if q is not None:
                    a[q, row] -= 1.0
                    a[row, q] -= 1.0
                # AC small-signal: DC sources are shorts (RHS row = 0).
            rhs = np.zeros(size, dtype=complex)
            rhs[probe] = 1.0  # 1 A injected into the probed node
            try:
                x = np.linalg.solve(a, rhs)
            except np.linalg.LinAlgError as exc:
                raise SolverError(
                    "singular AC system matrix",
                    node=node,
                    frequency_hz=float(f),
                    stage="ac",
                ) from exc
            out[i] = abs(x[probe])
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _unknown_name(self, idx: int, n: int) -> str:
        """Human-readable name of MNA unknown ``idx`` (node or branch)."""
        if idx < n:
            return list(self._nodes)[idx]
        return f"branch[{idx - n}]"

    def _check_state(
        self,
        x: np.ndarray,
        n: int,
        step: int,
        time_s: float,
        method: str,
        max_abs_v: float,
    ) -> None:
        """Guard one solved state vector; name the offending unknown."""
        finite = np.isfinite(x)
        if not finite.all():
            idx = int(np.argmin(finite))
            raise SolverError(
                "non-finite solution in transient solve",
                node=self._unknown_name(idx, n),
                step=step,
                time_s=time_s,
                method=method,
            )
        volts = np.abs(x[:n])
        if n and float(np.max(volts)) > max_abs_v:
            idx = int(np.argmax(volts))
            raise SolverError(
                "node voltage diverged (ringing or non-convergent "
                "integration)",
                node=self._unknown_name(idx, n),
                voltage_v=float(x[idx]),
                max_abs_v=max_abs_v,
                step=step,
                time_s=time_s,
                method=method,
            )

    def _check_trajectory(
        self,
        states: np.ndarray,
        n: int,
        times: np.ndarray,
        method: str,
        max_abs_v: float,
    ) -> None:
        """Guard a whole solved trajectory; name the first bad step.

        Vectorised equivalent of running :meth:`_check_state` after
        every step: the first step that is non-finite or diverged raises
        with the same context a per-step check would have produced
        (steps after it are never reported - they are downstream of the
        first failure).  Step 0 is the DC seed, already guarded by
        :meth:`_dc_state`.
        """
        with np.errstate(invalid="ignore"):
            bad = ~np.isfinite(states).all(axis=1)
            if n:
                # NaN compares False here; the non-finite flag wins.
                bad |= (np.abs(states[:, :n]) > max_abs_v).any(axis=1)
        bad[0] = False
        if bad.any():
            step = int(np.argmax(bad))
            self._check_state(
                states[step], n, step, float(times[step]), method, max_abs_v
            )

    def prime_transient(
        self, dt: float, method: str = "trapezoidal"
    ) -> None:
        """Factorise (and cache) the transient plan for ``(method, dt)``.

        Warm-pool workers call this at initialisation so the first real
        solve of a task pays only the right-hand-side work; it is the
        public face of the plan cache that :meth:`transient` consults.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        if method not in ("trapezoidal", "backward-euler"):
            raise ValueError(f"unknown integration method {method!r}")
        if not self._nodes:
            raise ValueError("circuit has no nodes")
        self._transient_plan(method, dt)

    def _solve_dc(self, at_time: float) -> np.ndarray:
        i_now = np.array(
            [
                float(s.waveform(np.array([at_time]))[0])
                if callable(s.waveform)
                else float(s.waveform)
                for s in self._isources
            ]
        )
        n = len(self._nodes)
        return self._dc_state(i_now, n, len(self._inductors), len(self._vsources))

    def _dc_state(
        self,
        i_now: np.ndarray,
        n: int,
        n_l: int,
        n_v: int,
        vsrc_vals: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Solve the DC network (caps open, inductors shorted).

        The DC matrix depends only on the netlist, so its factorisation
        is cached across calls (invalidated by any netlist change); only
        the source-dependent right-hand side is rebuilt.

        Returns the full MNA state vector (node voltages then inductor
        currents then voltage-source currents) used to seed the transient.
        """
        size = n + n_l + n_v
        if self._dc_rev != self._rev or self._dc_lu is None:
            rows: List[int] = []
            cols: List[int] = []
            vals: List[float] = []

            def stamp(i: Optional[int], j: Optional[int], v: float) -> None:
                if i is not None and j is not None:
                    rows.append(i)
                    cols.append(j)
                    vals.append(v)

            for r in self._resistors:
                g = 1.0 / r.ohms
                a, b = self._idx(r.a), self._idx(r.b)
                stamp(a, a, g), stamp(b, b, g)
                stamp(a, b, -g), stamp(b, a, -g)
            for k, l in enumerate(self._inductors):
                row = n + k
                a, b = self._idx(l.a), self._idx(l.b)
                stamp(a, row, 1.0), stamp(b, row, -1.0)
                stamp(row, a, 1.0), stamp(row, b, -1.0)  # v_a - v_b = 0 (short)
            for k, v in enumerate(self._vsources):
                row = n + n_l + k
                p, q = self._idx(v.pos), self._idx(v.neg)
                stamp(p, row, 1.0), stamp(q, row, -1.0)
                stamp(row, p, 1.0), stamp(row, q, -1.0)

            matrix = sp.csc_matrix((vals, (rows, cols)), shape=(size, size))
            try:
                self._dc_lu = spla.splu(matrix)
            except RuntimeError as exc:
                raise SolverError(
                    "singular DC network - check for floating nodes or "
                    "current sources into open circuits",
                    stage="dc",
                    size=size,
                ) from exc
            self._dc_rev = self._rev

        rhs = np.zeros(size)
        for k, s in enumerate(self._isources):
            f, t = self._idx(s.frm), self._idx(s.to)
            if f is not None:
                rhs[f] -= i_now[k]
            if t is not None:
                rhs[t] += i_now[k]
        if vsrc_vals is None:
            vsrc_vals = np.array([v.volts for v in self._vsources])
        rhs[n + n_l:] = vsrc_vals

        x = self._dc_lu.solve(rhs)
        finite = np.isfinite(x)
        if not finite.all():
            idx = int(np.argmin(finite))
            raise SolverError(
                "non-finite DC operating point",
                node=self._unknown_name(idx, n),
                stage="dc",
            )
        return x
