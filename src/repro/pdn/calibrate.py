"""Fit the fast PSN kernel against the MNA transient solver.

The fast model (:mod:`repro.pdn.fast`) is linear in the per-tile mean
currents with bin-dependent effective impedances.  This module generates a
corpus of domain configurations (single tiles, 1-hop and 2-hop pairs of
every bin combination, and random full domains), runs the transient
analysis on each, and solves the resulting least-squares problem for the
impedance constants - once for peak PSN and once for average PSN.  The
2-hop coupling discount ``kappa2`` is chosen by a small grid search.

Run ``python -m repro.pdn.calibrate`` to regenerate the constants frozen
into :mod:`repro.pdn.fast`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.chip.dvfs import alpha_power_frequency
from repro.chip.power import PowerModel
from repro.chip.technology import TechnologyNode, technology
from repro.pdn.fast import DOMAIN_DISTANCES, KernelLadder, PsnKernel
from repro.pdn.transient import PsnTransientAnalysis
from repro.pdn.waveforms import ActivityBin, TileLoad

#: Order of the unknown impedances in the least-squares system.
_UNKNOWNS = (
    "z_own_high",
    "z_own_low",
    "z_hh",
    "z_hl",
    "z_lh",
    "z_ll",
    "z_own_router",
    "z_cross_router",
)

_CROSS_INDEX = {
    (ActivityBin.HIGH, ActivityBin.HIGH): 2,
    (ActivityBin.HIGH, ActivityBin.LOW): 3,
    (ActivityBin.LOW, ActivityBin.HIGH): 4,
    (ActivityBin.LOW, ActivityBin.LOW): 5,
}


@dataclass(frozen=True)
class CalibrationSample:
    """One simulated domain configuration and its transient PSN result."""

    vdd: float
    freq_ratio: float
    loads: Tuple[Optional[TileLoad], ...]
    peak_psn_pct: np.ndarray
    avg_psn_pct: np.ndarray


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted kernel ladders plus fit diagnostics (worst per-Vdd RMS)."""

    peak_kernels: KernelLadder
    avg_kernels: KernelLadder
    peak_rms_error_pct: float
    avg_rms_error_pct: float
    samples: Tuple[CalibrationSample, ...]


def _activity_for(bin_: ActivityBin, rng: np.random.Generator) -> float:
    """Representative core activity factor for a bin."""
    if bin_ is ActivityBin.HIGH:
        return float(rng.uniform(0.55, 0.9))
    return float(rng.uniform(0.12, 0.35))


def _load(
    power_model: PowerModel,
    vdd: float,
    bin_: ActivityBin,
    rng: np.random.Generator,
    router_share: float,
) -> TileLoad:
    activity = _activity_for(bin_, rng)
    core = power_model.core_dynamic(activity, vdd) + power_model.core_leakage(vdd)
    flits = router_share * float(rng.uniform(1.0, 3.0))
    router = power_model.router_dynamic(flits, vdd) + power_model.router_leakage(vdd)
    return TileLoad(core, router, bin_)


def generate_samples(
    tech: TechnologyNode,
    vdds: Sequence[float] = (0.4, 0.6, 0.8),
    n_random: int = 8,
    seed: int = 2018,
    window_s: float = 200e-9,
    dt_s: float = 50e-12,
) -> List[CalibrationSample]:
    """Simulate the calibration corpus with the transient solver."""
    rng = np.random.default_rng(seed)
    power_model = PowerModel(tech)
    analysis = PsnTransientAnalysis(tech, window_s=window_s, dt_s=dt_s)
    samples: List[CalibrationSample] = []

    def run(vdd: float, loads: Sequence[Optional[TileLoad]]) -> None:
        filled = [l if l is not None else TileLoad.idle() for l in loads]
        report = analysis.analyze(vdd, filled)
        freq_ratio = (
            alpha_power_frequency(vdd, tech) / tech.freq_at_nominal_hz
        )
        samples.append(
            CalibrationSample(
                vdd=vdd,
                freq_ratio=freq_ratio,
                loads=tuple(loads),
                peak_psn_pct=report.peak_psn_pct,
                avg_psn_pct=report.avg_psn_pct,
            )
        )

    for vdd in vdds:
        # Single occupied tile, each bin, with and without router traffic.
        for bin_ in ActivityBin:
            for share in (0.0, 1.0):
                loads: List[Optional[TileLoad]] = [None] * 4
                loads[0] = _load(power_model, vdd, bin_, rng, share)
                run(vdd, loads)
        # Full same-bin domains - the configurations PARM's clustering
        # actually produces (underrepresenting them biases the fit).
        for bin_ in ActivityBin:
            for _rep in range(2):
                run(
                    vdd,
                    [_load(power_model, vdd, bin_, rng, 0.3) for _ in range(4)],
                )
        # Pairs at 1 hop (positions 0,1) and 2 hops (positions 0,3),
        # all bin combinations.
        for bin_a, bin_b in itertools.product(ActivityBin, repeat=2):
            for positions in ((0, 1), (0, 3)):
                loads = [None] * 4
                loads[positions[0]] = _load(power_model, vdd, bin_a, rng, 0.4)
                loads[positions[1]] = _load(power_model, vdd, bin_b, rng, 0.4)
                run(vdd, loads)
        # Random full/partial domains.
        for _ in range(n_random):
            loads = []
            for _pos in range(4):
                if rng.uniform() < 0.25:
                    loads.append(None)
                else:
                    bin_ = ActivityBin.HIGH if rng.uniform() < 0.5 else ActivityBin.LOW
                    loads.append(_load(power_model, vdd, bin_, rng, rng.uniform(0, 1)))
            run(vdd, loads)
    return samples


def _design_row(
    vdd: float,
    loads: Sequence[Optional[TileLoad]],
    tile: int,
    kappa2: float,
) -> Optional[np.ndarray]:
    """Feature vector so that psn_pct = 100/vdd * row . z."""
    me = loads[tile]
    if me is None or me.total_power_w <= 0.0:
        return None
    row = np.zeros(len(_UNKNOWNS))
    i_core = me.core_power_w / vdd
    i_router = me.router_power_w / vdd
    row[0 if me.activity_bin is ActivityBin.HIGH else 1] = i_core
    row[6] = i_router
    for j, other in enumerate(loads):
        if j == tile or other is None or other.total_power_w <= 0.0:
            continue
        dist = int(DOMAIN_DISTANCES[tile, j])
        kappa = 1.0 if dist == 1 else kappa2
        row[_CROSS_INDEX[(me.activity_bin, other.activity_bin)]] += (
            kappa * other.core_power_w / vdd
        )
        row[7] += kappa * other.router_power_w / vdd
    return row


def _fit_one_vdd(
    samples: Sequence[CalibrationSample],
    vdd: float,
    target: str,
    kappa2_grid: Sequence[float],
) -> Tuple[PsnKernel, float]:
    """Fit the impedance set for one ladder voltage."""
    best: Optional[Tuple[float, np.ndarray, float]] = None
    subset = [s for s in samples if abs(s.vdd - vdd) < 1e-9]
    if not subset:
        raise ValueError(f"no calibration samples at Vdd={vdd}")
    for kappa2 in kappa2_grid:
        rows, ys = [], []
        for s in subset:
            values = s.peak_psn_pct if target == "peak" else s.avg_psn_pct
            for tile in range(4):
                row = _design_row(s.vdd, s.loads, tile, kappa2)
                if row is None:
                    continue
                rows.append(row * 100.0 / s.vdd)
                ys.append(values[tile])
        a = np.asarray(rows)
        y = np.asarray(ys)
        z, *_ = np.linalg.lstsq(a, y, rcond=None)
        z = np.clip(z, 0.0, None)  # impedances are physical
        rms = float(np.sqrt(np.mean((a @ z - y) ** 2)))
        if best is None or rms < best[0]:
            best = (rms, z, kappa2)
    rms, z, kappa2 = best
    kernel = PsnKernel(
        z_own={ActivityBin.HIGH: float(z[0]), ActivityBin.LOW: float(z[1])},
        z_cross={
            (ActivityBin.HIGH, ActivityBin.HIGH): float(z[2]),
            (ActivityBin.HIGH, ActivityBin.LOW): float(z[3]),
            (ActivityBin.LOW, ActivityBin.HIGH): float(z[4]),
            (ActivityBin.LOW, ActivityBin.LOW): float(z[5]),
        },
        z_own_router=float(z[6]),
        z_cross_router=float(z[7]),
        kappa2=kappa2,
    )
    return kernel, rms


def fit_kernels(
    tech: Optional[TechnologyNode] = None,
    samples: Optional[Sequence[CalibrationSample]] = None,
    kappa2_grid: Sequence[float] = (0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 1.0),
    **sample_kwargs,
) -> CalibrationResult:
    """Fit the per-Vdd kernel ladders for a technology node.

    Either pass pre-generated ``samples`` or let the function simulate a
    corpus for ``tech`` (defaults to 7 nm).
    """
    if samples is None:
        tech = tech or technology("7nm")
        samples = generate_samples(tech, **sample_kwargs)
    vdds = sorted({s.vdd for s in samples})
    peak, avg = {}, {}
    peak_rms, avg_rms = [], []
    for vdd in vdds:
        kernel, rms = _fit_one_vdd(samples, vdd, "peak", kappa2_grid)
        peak[vdd] = kernel
        peak_rms.append(rms)
        kernel, rms = _fit_one_vdd(samples, vdd, "avg", kappa2_grid)
        avg[vdd] = kernel
        avg_rms.append(rms)
    return CalibrationResult(
        peak_kernels=KernelLadder(peak),
        avg_kernels=KernelLadder(avg),
        peak_rms_error_pct=float(np.max(peak_rms)),
        avg_rms_error_pct=float(np.max(avg_rms)),
        samples=tuple(samples),
    )


def _format_ladder(ladder: KernelLadder, name: str) -> str:
    """Paste-able `_kernel(...)` table for repro.pdn.fast."""
    from repro.pdn.waveforms import ActivityBin as AB

    lines = [f"{name} = KernelLadder(", "    kernels={"]
    for vdd in sorted(ladder.kernels):
        k = ladder.kernels[vdd]
        z = k.z_cross
        vals = ", ".join(
            f"{v * 1e3:.3f}"
            for v in (
                k.z_own[AB.HIGH],
                k.z_own[AB.LOW],
                z[(AB.HIGH, AB.HIGH)],
                z[(AB.HIGH, AB.LOW)],
                z[(AB.LOW, AB.HIGH)],
                z[(AB.LOW, AB.LOW)],
                k.z_own_router,
                k.z_cross_router,
            )
        )
        lines.append(f"        {vdd}: _kernel({vals}, {k.kappa2}),")
    lines.append("    }")
    lines.append(")")
    return "\n".join(lines)


def main() -> None:
    """Regenerate and print the frozen kernel constants."""
    result = fit_kernels(vdds=(0.4, 0.5, 0.6, 0.7, 0.8))
    print(f"peak worst per-Vdd RMS: {result.peak_rms_error_pct:.3f} % of Vdd")
    print(f"avg  worst per-Vdd RMS: {result.avg_rms_error_pct:.3f} % of Vdd")
    print(_format_ladder(result.peak_kernels, "_DEFAULT_PEAK"))
    print(_format_ladder(result.avg_kernels, "_DEFAULT_AVG"))


if __name__ == "__main__":
    main()
