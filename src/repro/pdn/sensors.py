"""On-die digital PSN sensor network (after Sadi et al. [16]).

The paper assumes a network of digital sensor macros that measure the
runtime PSN level at every core and NoC router; PARM's mapping feedback
and the PANR routing scheme consume *sensor readings*, not ground truth.
This module models the two non-idealities that matter at the system
level: quantisation (digital sensors report in LSB steps) and saturation
(a finite full-scale range).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass
class SensorNetwork:
    """Quantised per-tile PSN readings.

    Attributes:
        lsb_pct: Quantisation step in percent of Vdd (default 0.25 %,
            i.e. ~1 mV resolution at 0.4 V NTC supply).
        full_scale_pct: Saturation level in percent of Vdd.
    """

    lsb_pct: float = 0.25
    full_scale_pct: float = 25.0

    def __post_init__(self) -> None:
        if self.lsb_pct <= 0:
            raise ValueError("lsb_pct must be positive")
        if self.full_scale_pct <= self.lsb_pct:
            raise ValueError("full_scale_pct must exceed lsb_pct")
        self._readings: Dict[int, float] = {}

    def read(self, true_psn_pct: float) -> float:
        """Quantise and clamp one true PSN value (percent of Vdd)."""
        clamped = min(max(true_psn_pct, 0.0), self.full_scale_pct)
        return round(clamped / self.lsb_pct) * self.lsb_pct

    def read_array(self, true_psn_pct: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`read`."""
        clamped = np.clip(np.asarray(true_psn_pct, dtype=float), 0.0, self.full_scale_pct)
        return np.round(clamped / self.lsb_pct) * self.lsb_pct

    def update(self, tile: int, true_psn_pct: float) -> float:
        """Store and return the quantised reading for a tile."""
        value = self.read(true_psn_pct)
        self._readings[tile] = value
        return value

    def latest(self, tile: int) -> float:
        """Most recent reading for a tile (0 if never sampled)."""
        return self._readings.get(tile, 0.0)

    def snapshot(self) -> Dict[int, float]:
        """Copy of all current readings."""
        return dict(self._readings)
