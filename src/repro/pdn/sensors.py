"""On-die digital PSN sensor network (after Sadi et al. [16]).

The paper assumes a network of digital sensor macros that measure the
runtime PSN level at every core and NoC router; PARM's mapping feedback
and the PANR routing scheme consume *sensor readings*, not ground truth.
This module models the non-idealities that matter at the system level:

* quantisation (digital sensors report in LSB steps);
* saturation (a finite full-scale range);
* **faults** - a sensor macro can latch one code forever (stuck-at),
  stop responding (dead), or silently drift away from the true value;
* **staleness** - a reading that has not been refreshed within the
  staleness limit can no longer be trusted by adaptive consumers.

Detected faults (stuck, dead - both visible to the macro's self-test /
heartbeat) and stale readings are reported as *invalid* so consumers
such as PANR can fall back to deterministic behaviour; drift is a
silent fault and stays "valid" - consumers cannot tell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

#: Recognised sensor fault kinds (hardware-level view; the campaign
#: model maps :class:`repro.faults.events.FaultKind` onto these).
SENSOR_FAULT_KINDS = ("stuck", "dead", "drift")


@dataclass(frozen=True)
class SensorFault:
    """Fault state of one sensor macro.

    Attributes:
        kind: ``"stuck"`` (latches ``value_pct`` forever, detected),
            ``"dead"`` (stops responding, detected) or ``"drift"``
            (reading moves away from truth at ``value_pct`` percent of
            Vdd per second, silent).
        value_pct: Stuck reading, or drift rate in percent/s.
        since_s: Fault onset time (drives the drift offset).
    """

    kind: str
    value_pct: float = 0.0
    since_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in SENSOR_FAULT_KINDS:
            raise ValueError(
                f"unknown sensor fault kind {self.kind!r}; "
                f"known: {SENSOR_FAULT_KINDS}"
            )
        if not math.isfinite(self.value_pct):
            raise ValueError("value_pct must be finite")
        if not math.isfinite(self.since_s) or self.since_s < 0:
            raise ValueError("since_s must be finite and non-negative")

    @property
    def detected(self) -> bool:
        """Whether the macro's self-test flags this fault (drift is
        silent)."""
        return self.kind in ("stuck", "dead")


@dataclass
class SensorNetwork:
    """Quantised per-tile PSN readings with fault and staleness tracking.

    Attributes:
        lsb_pct: Quantisation step in percent of Vdd (default 0.25 %,
            i.e. ~1 mV resolution at 0.4 V NTC supply).
        full_scale_pct: Saturation level in percent of Vdd.
        staleness_limit_s: Readings older than this are reported invalid
            by :meth:`read_tiles` (``None`` disables the check).
    """

    lsb_pct: float = 0.25
    full_scale_pct: float = 25.0
    staleness_limit_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.lsb_pct <= 0:
            raise ValueError("lsb_pct must be positive")
        if self.full_scale_pct <= self.lsb_pct:
            raise ValueError("full_scale_pct must exceed lsb_pct")
        if self.staleness_limit_s is not None and self.staleness_limit_s <= 0:
            raise ValueError("staleness_limit_s must be positive")
        self._readings: Dict[int, float] = {}
        self._faults: Dict[int, SensorFault] = {}
        self._updated_s: Dict[int, float] = {}

    def read(self, true_psn_pct: float) -> float:
        """Quantise and clamp one true PSN value (percent of Vdd).

        Raises:
            ValueError: on a NaN/inf input - a non-finite PSN level is
                always an upstream modelling bug, and ``round(nan)``
                would silently poison every PANR cost term downstream.
        """
        if not math.isfinite(true_psn_pct):
            raise ValueError(
                f"true PSN must be finite, got {true_psn_pct!r}"
            )
        clamped = min(max(true_psn_pct, 0.0), self.full_scale_pct)
        return round(clamped / self.lsb_pct) * self.lsb_pct

    def read_array(self, true_psn_pct: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`read` (raises on non-finite inputs)."""
        values = np.asarray(true_psn_pct, dtype=float)
        if not np.all(np.isfinite(values)):
            bad = np.flatnonzero(~np.isfinite(values))
            raise ValueError(
                f"true PSN must be finite; non-finite at tiles {bad.tolist()}"
            )
        clamped = np.clip(values, 0.0, self.full_scale_pct)
        return np.round(clamped / self.lsb_pct) * self.lsb_pct

    def update(self, tile: int, true_psn_pct: float, now_s: float = 0.0) -> float:
        """Store and return the quantised reading for a tile."""
        value = self.read(true_psn_pct)
        self._readings[tile] = value
        self._updated_s[tile] = now_s
        return value

    def latest(self, tile: int) -> float:
        """Most recent reading for a tile (0 if never sampled)."""
        return self._readings.get(tile, 0.0)

    def snapshot(self) -> Dict[int, float]:
        """Copy of all current readings."""
        return dict(self._readings)

    # ------------------------------------------------------------------
    # Fault state
    # ------------------------------------------------------------------

    def set_fault(self, tile: int, fault: SensorFault) -> None:
        """Mark one tile's sensor macro as faulted (last fault wins)."""
        self._faults[tile] = fault

    def clear_fault(self, tile: int, since_s: Optional[float] = None) -> None:
        """Clear a tile's fault.

        Args:
            tile: The tile whose fault expires.
            since_s: When given, clear only if the active fault started
                at that time - so an expiring transient fault does not
                clear a different fault injected later on the same tile.
        """
        fault = self._faults.get(tile)
        if fault is None:
            return
        # Identity check, not arithmetic: both timestamps come from the
        # same assignment, so exact inequality is the correct test (a
        # tolerance could clear a *different* fault injected nearby).
        if since_s is not None and fault.since_s != since_s:  # parmlint: ok[float-eq]
            return
        del self._faults[tile]

    def fault(self, tile: int) -> Optional[SensorFault]:
        """Active fault of a tile's sensor, if any."""
        return self._faults.get(tile)

    def faulted_tiles(self) -> Dict[int, SensorFault]:
        """Copy of the active fault map."""
        return dict(self._faults)

    def is_stale(self, tile: int, now_s: float) -> bool:
        """Whether a tile's reading is older than the staleness limit."""
        if self.staleness_limit_s is None:
            return False
        updated = self._updated_s.get(tile)
        if updated is None:
            return True
        return now_s - updated > self.staleness_limit_s

    # ------------------------------------------------------------------
    # Fault-aware bulk sampling (the runtime's per-refresh entry point)
    # ------------------------------------------------------------------

    def read_tiles(
        self, true_psn_pct: np.ndarray, now_s: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample every tile's sensor, applying faults and staleness.

        Healthy sensors quantise the true value and refresh their
        staleness stamp.  Stuck sensors report their latched code, dead
        sensors report their last healthy reading, drifting sensors
        report a silently skewed value.

        Args:
            true_psn_pct: Per-tile true PSN levels (percent of Vdd).
            now_s: Current simulation time.

        Returns:
            ``(readings, valid)``: the per-tile readings and a boolean
            mask that is False where the reading must not be trusted
            (detected fault, or stale).
        """
        true_psn_pct = np.asarray(true_psn_pct, dtype=float)
        values = self.read_array(true_psn_pct)
        n = values.shape[0]
        valid = np.ones(n, dtype=bool)
        for tile, fault in self._faults.items():
            if tile >= n:
                continue
            if fault.kind == "stuck":
                values[tile] = self.read(
                    min(max(fault.value_pct, 0.0), self.full_scale_pct)
                )
                valid[tile] = False
            elif fault.kind == "dead":
                values[tile] = self._readings.get(tile, 0.0)
                valid[tile] = False
            else:  # drift: silent, stays "valid"
                drifted = true_psn_pct[tile] + fault.value_pct * max(
                    0.0, now_s - fault.since_s
                )
                values[tile] = self.read(
                    min(max(drifted, 0.0), self.full_scale_pct)
                )
        for tile in range(n):
            fault = self._faults.get(tile)
            if fault is not None and fault.kind == "dead":
                # A dead sensor never refreshes; its reading goes stale.
                if self.is_stale(tile, now_s):
                    valid[tile] = False
                continue
            self._readings[tile] = float(values[tile])
            self._updated_s[tile] = now_s
        return values, valid
