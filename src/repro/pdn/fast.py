"""Fast interference-kernel PSN model for use inside runtime simulations.

The transient MNA analysis (:mod:`repro.pdn.transient`) is the ground
truth, but it is far too slow to call on every scheduling epoch of a long
multi-application simulation.  Because the PDN is a linear network and the
workload waveform *shapes* are fixed per (activity bin, Vdd) - burst rates
track the clock frequency of the domain - the peak and average droop at a
tile are, to good accuracy, linear in the tile currents at a given supply
voltage:

    PSN_i [%] = (100 / Vdd) * ( z_own(bin_i) * Ic_i
                                + z_own_router * Ir_i
                                + sum_j  kappa(d_ij) * z_cross(bin_i, bin_j) * Ic_j
                                + sum_j  kappa(d_ij) * z_cross_router * Ir_j )

where ``Ic``/``Ir`` are core/router mean currents (power / Vdd), ``z`` are
effective impedances in ohms, and ``kappa(d)`` discounts 2-hop (diagonal)
coupling relative to 1-hop coupling inside the 2x2 domain.

The chip's DVS ladder is discrete (0.4-0.8 V in 0.1 V steps), so one
``z`` set is **fitted against the transient solver per ladder level**
(:mod:`repro.pdn.calibrate`); :class:`KernelLadder` dispatches to the
nearest fitted level.  The fitted constants encode the paper's
observations directly:

* ``z_cross(LOW, HIGH)`` dominates the cross terms - a Low-activity
  victim next to a High-activity aggressor suffers the most (Fig. 3b);
* ``kappa(2) <= kappa(1)`` - diagonal (2-hop) neighbours interfere less;
* the effective impedances grow with Vdd (burst di/dt tracks the clock),
  which is why relative PSN rises with supply voltage (Fig. 3a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.harness.errors import SolverError, SolverInputError
from repro.pdn.waveforms import ActivityBin, TileLoad

#: Manhattan distance between tile positions of a 2x2 domain
#: (row-major order: 0=TL, 1=TR, 2=BL, 3=BR).
DOMAIN_DISTANCES = np.array(
    [
        [0, 1, 1, 2],
        [1, 0, 2, 1],
        [1, 2, 0, 1],
        [2, 1, 1, 0],
    ]
)

#: Integer encoding of :class:`ActivityBin` used by the batched kernel
#: path (`evaluate_batch`): index into the per-kernel lookup tables.
BIN_INDEX: Dict[ActivityBin, int] = {ActivityBin.HIGH: 0, ActivityBin.LOW: 1}
_BIN_ORDER = (ActivityBin.HIGH, ActivityBin.LOW)


@dataclass(frozen=True)
class _KernelTables:
    """Array form of one :class:`PsnKernel` for batched evaluation."""

    z_own: np.ndarray  # (2,) indexed by BIN_INDEX
    z_cross: np.ndarray  # (2, 2) indexed by (BIN_INDEX[i], BIN_INDEX[j])
    kappa: np.ndarray  # (4, 4) coupling discount, zero diagonal

    #: Kernel matrices are shared read-only with pool workers (warm-pool
    #: plan); parmlint's shared-readonly rule bans writes after
    #: construction.  (Unannotated class attr: not a dataclass field.)
    __shared_readonly__ = ("z_own", "z_cross", "kappa")


def _check_batch_inputs(
    vdd: np.ndarray, i_core: np.ndarray, i_router: np.ndarray
) -> None:
    """Row-order input guards shared by the batched evaluation paths.

    Raises the same exceptions as the scalar :meth:`PsnKernel.evaluate`
    guards, attributed to the first offending row in batch order.
    """
    finite_vdd = np.isfinite(vdd)
    if not finite_vdd.all():
        d = int(np.argmin(finite_vdd))
        raise SolverInputError(
            "non-finite supply voltage in PSN kernel",
            vdd=float(vdd[d]),
            domain_row=d,
        )
    if (vdd <= 0).any():
        raise ValueError("vdd must be positive")
    bad = ~(np.isfinite(i_core) & np.isfinite(i_router))
    if bad.any():
        d, k = divmod(int(np.argmax(bad)), bad.shape[1])
        raise SolverInputError(
            "non-finite tile current in PSN kernel",
            tile=int(k),
            core_current_a=float(i_core[d, k]),
            router_current_a=float(i_router[d, k]),
            vdd=float(vdd[d]),
        )


@dataclass(frozen=True)
class PsnKernel:
    """Effective-impedance kernel for one supply voltage.

    All ``z`` values are in ohms.  ``kappa2`` is the dimensionless 2-hop
    coupling discount (1-hop coupling is 1.0 by definition).
    """

    z_own: Dict[ActivityBin, float]
    z_cross: Dict[Tuple[ActivityBin, ActivityBin], float]
    z_own_router: float
    z_cross_router: float
    kappa2: float

    def __post_init__(self) -> None:
        if set(self.z_own) != set(ActivityBin):
            raise ValueError("z_own must cover both activity bins")
        pairs = {(a, b) for a in ActivityBin for b in ActivityBin}
        if set(self.z_cross) != pairs:
            raise ValueError("z_cross must cover all bin pairs")
        if not 0.0 <= self.kappa2 <= 1.5:
            raise ValueError("kappa2 out of plausible range")

    def kappa(self, distance: int) -> float:
        """Coupling discount for a given intra-domain hop distance."""
        if distance == 0:
            return 0.0
        if distance == 1:
            return 1.0
        if distance == 2:
            return self.kappa2
        raise ValueError("intra-domain distances are 0, 1 or 2")

    def evaluate(
        self, vdd: float, loads: Sequence[Optional[TileLoad]]
    ) -> np.ndarray:
        """PSN percent per tile of one domain.

        Args:
            vdd: Domain supply voltage in volts.
            loads: Four entries; ``None`` or :meth:`TileLoad.idle` marks a
                dark tile.

        Returns:
            Array of shape (4,): PSN as percent of Vdd per tile position.
        """
        if not np.isfinite(vdd):
            raise SolverInputError(
                "non-finite supply voltage in PSN kernel", vdd=float(vdd)
            )
        if vdd <= 0:
            raise ValueError("vdd must be positive")
        if len(loads) != 4:
            raise ValueError("a domain has exactly 4 tiles")
        i_core = np.zeros(4)
        i_router = np.zeros(4)
        bins: list = [ActivityBin.LOW] * 4
        for k, load in enumerate(loads):
            if load is None:
                continue
            i_core[k] = load.core_power_w / vdd
            i_router[k] = load.router_power_w / vdd
            bins[k] = load.activity_bin

        # Mirror the transient solver's NaN/inf guards (SolverError with
        # the offending tile) so the fast and circuit paths fail alike.
        bad = ~(np.isfinite(i_core) & np.isfinite(i_router))
        if bad.any():
            k = int(np.argmax(bad))
            raise SolverInputError(
                "non-finite tile current in PSN kernel",
                tile=k,
                core_current_a=float(i_core[k]),
                router_current_a=float(i_router[k]),
                vdd=float(vdd),
            )

        psn = np.zeros(4)
        for i in range(4):
            acc = self.z_own[bins[i]] * i_core[i] + self.z_own_router * i_router[i]
            for j in range(4):
                if j == i:
                    continue
                k = self.kappa(int(DOMAIN_DISTANCES[i, j]))
                acc += k * self.z_cross[(bins[i], bins[j])] * i_core[j]
                acc += k * self.z_cross_router * i_router[j]
            psn[i] = 100.0 * acc / vdd
        finite = np.isfinite(psn)
        if not finite.all():
            raise SolverError(
                "non-finite PSN from kernel evaluation",
                tile=int(np.argmin(finite)),
                vdd=float(vdd),
            )
        return psn

    def tables(self) -> _KernelTables:
        """Array form of this kernel, built once and cached."""
        cached = self.__dict__.get("_tables")
        if cached is None:
            cached = _KernelTables(
                z_own=np.array([self.z_own[b] for b in _BIN_ORDER]),
                z_cross=np.array(
                    [
                        [self.z_cross[(a, b)] for b in _BIN_ORDER]
                        for a in _BIN_ORDER
                    ]
                ),
                kappa=np.array(
                    [
                        [self.kappa(int(d)) for d in row]
                        for row in DOMAIN_DISTANCES
                    ]
                ),
            )
            object.__setattr__(self, "_tables", cached)
        return cached

    def evaluate_batch(
        self,
        vdd: np.ndarray,
        i_core: np.ndarray,
        i_router: np.ndarray,
        bins: np.ndarray,
    ) -> np.ndarray:
        """PSN percent for many domains at once (one matvec, no loops).

        Args:
            vdd: Shape (m,) - supply voltage per domain, volts.
            i_core: Shape (m, 4) - core mean currents, amps.
            i_router: Shape (m, 4) - router mean currents, amps.
            bins: Shape (m, 4) - activity bins encoded via
                :data:`BIN_INDEX`.

        Returns:
            Array of shape (m, 4): PSN as percent of Vdd per tile.
            Matches :meth:`evaluate` row by row (same guard exceptions,
            same values up to floating-point summation order).
        """
        vdd = np.asarray(vdd, dtype=float)
        if i_core.shape != bins.shape or i_router.shape != bins.shape:
            raise ValueError("current/bin arrays must share shape (m, 4)")
        _check_batch_inputs(vdd, i_core, i_router)
        t = self.tables()
        own = t.z_own[bins] * i_core + self.z_own_router * i_router
        # Victim/aggressor coupling: z_cross looked up per (bin_i, bin_j)
        # pair, discounted by the hop-distance kappa (zero diagonal).
        z_pair = t.z_cross[bins[:, :, None], bins[:, None, :]]
        cross_core = np.einsum("mij,mj->mi", z_pair * t.kappa[None, :, :], i_core)
        cross_router = self.z_cross_router * (i_router @ t.kappa)
        psn = 100.0 * (own + cross_core + cross_router) / vdd[:, None]
        finite = np.isfinite(psn)
        if not finite.all():
            d, k = divmod(int(np.argmin(finite.ravel())), psn.shape[1])
            raise SolverError(
                "non-finite PSN from kernel evaluation",
                tile=int(k),
                vdd=float(vdd[d]),
            )
        return psn


@dataclass(frozen=True)
class KernelLadder:
    """Per-Vdd-level kernels with nearest-level dispatch."""

    kernels: Dict[float, PsnKernel]

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError("ladder needs at least one kernel")
        if any(v <= 0 for v in self.kernels):
            raise ValueError("Vdd levels must be positive")

    def kernel_for(self, vdd: float) -> PsnKernel:
        """The kernel fitted at the nearest ladder voltage."""
        level = min(self.kernels, key=lambda v: abs(v - vdd))
        return self.kernels[level]

    def evaluate(
        self, vdd: float, loads: Sequence[Optional[TileLoad]]
    ) -> np.ndarray:
        return self.kernel_for(vdd).evaluate(vdd, loads)

    def evaluate_batch(
        self,
        vdds: np.ndarray,
        i_core: np.ndarray,
        i_router: np.ndarray,
        bins: np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`evaluate` over many domains at once.

        Rows are grouped by nearest fitted ladder level (same
        tie-breaking as :meth:`kernel_for`: first level in ladder order
        wins) and each group is evaluated with one matvec.
        """
        vdds = np.asarray(vdds, dtype=float)
        levels = list(self.kernels)
        out = np.empty((vdds.shape[0], 4))
        if len(levels) == 1:
            return self.kernels[levels[0]].evaluate_batch(
                vdds, i_core, i_router, bins
            )
        # Guard the full batch in row order *before* grouping by level so
        # a poisoned row is attributed exactly as the scalar path would.
        _check_batch_inputs(vdds, i_core, i_router)
        dist = np.abs(vdds[:, None] - np.array(levels)[None, :])
        nearest = np.argmin(dist, axis=1)
        for level_i in np.unique(nearest):
            sel = nearest == level_i
            out[sel] = self.kernels[levels[int(level_i)]].evaluate_batch(
                vdds[sel], i_core[sel], i_router[sel], bins[sel]
            )
        return out


def _kernel(
    z_h: float,
    z_l: float,
    z_hh: float,
    z_hl: float,
    z_lh: float,
    z_ll: float,
    z_r: float,
    z_xr: float,
    kappa2: float,
) -> PsnKernel:
    return PsnKernel(
        z_own={ActivityBin.HIGH: z_h * 1e-3, ActivityBin.LOW: z_l * 1e-3},
        z_cross={
            (ActivityBin.HIGH, ActivityBin.HIGH): z_hh * 1e-3,
            (ActivityBin.HIGH, ActivityBin.LOW): z_hl * 1e-3,
            (ActivityBin.LOW, ActivityBin.HIGH): z_lh * 1e-3,
            (ActivityBin.LOW, ActivityBin.LOW): z_ll * 1e-3,
        },
        z_own_router=z_r * 1e-3,
        z_cross_router=z_xr * 1e-3,
        kappa2=kappa2,
    )


# --- fitted at 7nm by repro.pdn.calibrate (do not edit by hand) ----------
# Regenerate with `python -m repro.pdn.calibrate` after changing PDN or
# waveform parameters; the run is recorded in EXPERIMENTS.md.
_DEFAULT_PEAK = KernelLadder(
    kernels={
        0.4: _kernel(14.860, 10.240, 0.000, 0.000, 2.922, 0.000, 10.908, 7.085, 1.0),
        0.5: _kernel(10.605, 10.297, 2.785, 8.416, 4.754, 1.250, 12.572, 0.657, 0.8),
        0.6: _kernel(14.496, 14.785, 1.009, 3.351, 1.660, 0.000, 10.879, 4.491, 0.75),
        0.7: _kernel(16.927, 14.138, 0.000, 0.000, 4.262, 0.000, 9.077, 7.158, 1.0),
        0.8: _kernel(22.330, 20.012, 0.000, 0.000, 6.517, 0.000, 7.525, 11.350, 0.5),
    }
)

_DEFAULT_AVG = KernelLadder(
    kernels={
        0.4: _kernel(4.495, 4.422, 0.534, 0.145, 0.823, 0.243, 4.033, 1.394, 0.6),
        0.5: _kernel(4.289, 4.431, 0.789, 1.084, 0.931, 0.721, 4.284, 0.757, 0.5),
        0.6: _kernel(4.429, 4.942, 0.712, 0.812, 0.724, 0.298, 4.042, 1.100, 0.5),
        0.7: _kernel(4.644, 4.601, 0.493, 0.157, 0.876, 0.064, 4.185, 1.331, 0.7),
        0.8: _kernel(5.396, 5.076, 0.152, 0.000, 1.062, 0.000, 3.828, 2.015, 0.5),
    }
)


@dataclass
class FastPsnModel:
    """Runtime PSN estimator for whole-chip simulations.

    Evaluates the fitted peak/average kernel ladders per power domain.
    Domains are electrically independent (Section 3.3), so the chip-level
    result is the per-domain results side by side.
    """

    peak_kernels: KernelLadder = field(default_factory=lambda: _DEFAULT_PEAK)
    avg_kernels: KernelLadder = field(default_factory=lambda: _DEFAULT_AVG)

    def domain_psn(
        self, vdd: float, loads: Sequence[Optional[TileLoad]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Peak and average PSN percent for the four tiles of a domain."""
        return (
            self.peak_kernels.evaluate(vdd, loads),
            self.avg_kernels.evaluate(vdd, loads),
        )

    def chip_psn(
        self,
        vdds: np.ndarray,
        i_core: np.ndarray,
        i_router: np.ndarray,
        bins: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`domain_psn` over all active domains at once.

        Args:
            vdds: Shape (m,) - supply voltage per domain.
            i_core: Shape (m, 4) - core mean currents, amps.
            i_router: Shape (m, 4) - router mean currents, amps.
            bins: Shape (m, 4) - activity bins via
                :data:`BIN_INDEX`.

        Returns:
            ``(peak, avg)`` arrays of shape (m, 4), matching m calls to
            :meth:`domain_psn` row by row.
        """
        return (
            self.peak_kernels.evaluate_batch(vdds, i_core, i_router, bins),
            self.avg_kernels.evaluate_batch(vdds, i_core, i_router, bins),
        )
