"""Transient ("SPICE-level") PSN analysis of one power-supply domain.

Runs the MNA solver on the Fig. 2 domain PDN with workload current
waveforms and extracts the paper's Eq. (1) noise metric per tile:

    PSN_i(t) = (Vbump - V_tile_i(t)) / Vbump

reported as peak and average percentages over the analysis window.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.chip.technology import TechnologyNode
from repro.harness.errors import SolverError, SolverInputError
from repro.pdn.builder import TILE_NODES, DomainPdnBuilder
from repro.pdn.circuit import Circuit, TransientResult
from repro.pdn.waveforms import ActivityBin, CurrentWaveform, TileLoad

#: Adaptive-timestep floor of :func:`guarded_transient`: the timestep is
#: halved on failure down to this fraction of the requested ``dt``.
MIN_DT_SCALE = 0.125

#: Phase jitter between same-bin threads of one application, seconds.
#: Same-bin threads run barrier-synchronised code, so their current bursts
#: are *nearly* aligned: the k-th thread of a bin group lags by k times
#: this jitter.  Nearly-aligned neighbours sag together and exchange only
#: a fraction of their noise through the on-chip grid, whereas cross-bin
#: neighbours burst at different frequencies (120 vs 75 MHz) and therefore
#: sweep through worst-case edge alignment within one analysis window -
#: the mechanism behind the paper's Fig. 3b observation that High-Low
#: neighbours interfere the most.
SAME_BIN_JITTER_S = 0.6e-9

#: How strongly task burst rates track the clock frequency.  Program
#: phases (loops, cache-miss bursts, barrier cadence) slow down with the
#: core clock, but not fully - memory-bound cadence does not scale - so
#: the burst frequency follows (f(Vdd) / f(Vnominal)) ** 0.5.  This is
#: the paper's own explanation of Fig. 3a: the supply voltage "decides
#: the maximum operating frequency Fmax of cores and routers", which in
#: turn drives di/dt and hence peak PSN.
CLOCK_TRACKING_EXPONENT = 0.5


def clock_burst_scale(vdd: float, tech: TechnologyNode) -> float:
    """Burst-frequency multiplier for a domain running at ``vdd``."""
    from repro.chip.dvfs import alpha_power_frequency

    ratio = alpha_power_frequency(vdd, tech) / tech.freq_at_nominal_hz
    return ratio ** CLOCK_TRACKING_EXPONENT


def apply_phase_convention(
    loads: Sequence[TileLoad], burst_scale: float = 1.0
) -> List[TileLoad]:
    """Assign canonical burst phases to the tasks of one domain.

    Within each activity-bin group, the k-th task (in position order)
    gets a phase lag of ``k * SAME_BIN_JITTER_S``; all tasks burst at
    their bin's nominal frequency times ``burst_scale`` (the domain's
    clock-tracking factor).  Idle tiles are returned unchanged.
    """
    if burst_scale <= 0:
        raise ValueError("burst_scale must be positive")
    counters = {bin_: 0 for bin_ in ActivityBin}
    out: List[TileLoad] = []
    for load in loads:
        if load.total_power_w <= 0.0:
            out.append(load)
            continue
        k = counters[load.activity_bin]
        counters[load.activity_bin] += 1
        out.append(
            dataclasses.replace(
                load, phase_s=k * SAME_BIN_JITTER_S, freq_scale=burst_scale
            )
        )
    return out


def guarded_transient(
    circuit: Circuit,
    duration_s: float,
    dt_s: float,
    min_dt_scale: float = MIN_DT_SCALE,
    isource_waveforms: Optional[Sequence] = None,
    vsource_values: Optional[Sequence[float]] = None,
) -> Tuple[TransientResult, str, float]:
    """Transient solve with automatic integration-method fallback.

    The escalation ladder on a :class:`SolverError` (ringing,
    divergence, an ill-conditioned factorisation...):

    1. trapezoidal at the requested ``dt_s`` (the accurate default for
       the lightly damped RLC tanks of a PDN);
    2. backward Euler at ``dt_s`` - L-stable, so spurious trapezoidal
       ringing of stiff modes is damped out;
    3. backward Euler with the timestep halved repeatedly, down to a
       floor of ``dt_s * min_dt_scale``.

    Input-data failures (:class:`SolverInputError` - a non-finite
    source waveform or supply voltage) short-circuit the ladder: no
    method or timestep change can fix them, so they re-raise from the
    first rung instead of wasting four more full solves.

    Args:
        circuit: The netlist to solve.
        duration_s: Analysis window in seconds.
        dt_s: Requested timestep in seconds.
        min_dt_scale: Adaptive-halving floor as a fraction of ``dt_s``.
        isource_waveforms: Optional per-call current-waveform overrides
            passed through to :meth:`Circuit.transient`; lets one
            factorised circuit serve many workloads.
        vsource_values: Optional per-call voltage-source overrides (one
            per source); lets one factorised circuit serve many supply
            voltages.

    Returns:
        ``(result, method, dt_s)`` - the first successful solve plus the
        method and timestep that produced it.

    Raises:
        SolverInputError: immediately, on a failure no fallback can fix
            (bad input data); the first rung's error propagates as-is.
        SolverError: when every rung of the ladder fails; the error
            lists each attempt and keeps the last failure's node/step
            context.
    """
    if not 0.0 < min_dt_scale <= 1.0:
        raise ValueError("min_dt_scale must be in (0, 1]")
    plan: List[Tuple[str, float]] = [
        ("trapezoidal", dt_s),
        ("backward-euler", dt_s),
    ]
    half_dt = dt_s / 2.0
    floor_dt = dt_s * min_dt_scale
    while half_dt >= floor_dt:
        plan.append(("backward-euler", half_dt))
        half_dt /= 2.0

    attempts: List[str] = []
    last: SolverError = SolverError("no attempt ran")
    # Forward the overrides only when set, so simple Circuit stand-ins
    # (test doubles) need not grow the override parameters.
    overrides = {}
    if isource_waveforms is not None:
        overrides["isource_waveforms"] = isource_waveforms
    if vsource_values is not None:
        overrides["vsource_values"] = vsource_values
    for method, dt_k in plan:
        try:
            result = circuit.transient(
                duration_s, dt_k, method=method, **overrides
            )
            return result, method, dt_k
        except SolverInputError:
            raise
        except SolverError as exc:
            attempts.append(f"{method}@{dt_k:.3e}s: {exc.message}")
            last = exc
    context = {
        key: last.context[key]
        for key in ("node", "step", "time_s")
        if key in last.context
    }
    raise SolverError(
        "transient analysis failed after method fallback and timestep "
        "halving",
        attempts=tuple(attempts),
        **context,
    ) from last


@dataclass(frozen=True)
class DomainPsnReport:
    """Per-tile PSN extracted from one domain transient analysis.

    Attributes:
        vdd: Domain supply voltage in volts.
        peak_psn_pct: Peak PSN per tile, percent of Vdd, shape (4,).
        avg_psn_pct: Time-average PSN per tile, percent of Vdd, shape (4,).
        solver_method: Integration method that produced the result
            (``"trapezoidal"`` unless the guarded solve fell back).
        solver_dt_s: Timestep that produced the result (the requested
            ``dt_s`` unless adaptive halving kicked in).
    """

    vdd: float
    peak_psn_pct: np.ndarray
    avg_psn_pct: np.ndarray
    solver_method: str = "trapezoidal"
    solver_dt_s: float = 0.0

    @property
    def domain_peak_pct(self) -> float:
        """Worst peak PSN across the four tiles."""
        return float(np.max(self.peak_psn_pct))

    @property
    def domain_avg_pct(self) -> float:
        """Mean of the per-tile average PSN."""
        return float(np.mean(self.avg_psn_pct))


class PsnTransientAnalysis:
    """Transient PSN analyser for 2x2 power domains.

    Args:
        tech: Technology node (PDN parasitics).
        window_s: Analysis window; must cover several beat periods of the
            High/Low burst frequencies (default 300 ns).
        dt_s: Integration timestep (default 50 ps, ~7 points per burst
            edge at the High bin's sharpness).
    """

    def __init__(
        self,
        tech: TechnologyNode,
        window_s: float = 300e-9,
        dt_s: float = 50e-12,
    ):
        if window_s <= 0 or dt_s <= 0 or dt_s >= window_s:
            raise ValueError("require 0 < dt_s < window_s")
        self._tech = tech
        self._builder = DomainPdnBuilder(tech)
        self._window_s = window_s
        self._dt_s = dt_s
        # The domain PDN topology is fixed per technology node - only
        # the supply voltage and the tile current waveforms vary between
        # analyses, and both enter the MNA system through the right-hand
        # side.  Build the circuit once (unit supply, zero loads) and
        # override sources per solve, so the sparse factorisation is
        # shared across every (vdd, workload) this analyser sees.
        self._circuit: Optional[Circuit] = None

    @property
    def tech(self) -> TechnologyNode:
        return self._tech

    def prime(self) -> None:
        """Build the domain circuit and factorise its transient plan.

        Everything :meth:`analyze` reuses across calls - the netlist and
        the sparse-LU plan of the default (trapezoidal, requested dt)
        rung - is built eagerly, so warm-pool workers pay the
        factorisation at initialisation instead of on their first task.
        Priming is idempotent and changes no analysis result: the same
        cached plan would have been built lazily by the first solve.
        """
        if self._circuit is None:
            self._circuit = self._builder.build(1.0, [0.0] * len(TILE_NODES))
        self._circuit.prime_transient(self._dt_s)

    def analyze(
        self,
        vdd: float,
        loads: Sequence[TileLoad],
        apply_convention: bool = True,
    ) -> DomainPsnReport:
        """Simulate one domain and report per-tile PSN.

        Args:
            vdd: Domain supply voltage.
            loads: Exactly four tile workloads (use
                :meth:`TileLoad.idle` for dark tiles).
            apply_convention: When true (default), task phases follow the
                canonical :func:`apply_phase_convention` (same-bin threads
                nearly aligned, cross-bin threads free-running).  Pass
                false to control phases explicitly through the loads.
        """
        if len(loads) != len(TILE_NODES):
            raise ValueError(f"expected {len(TILE_NODES)} tile loads")
        if apply_convention:
            loads = apply_phase_convention(
                loads, burst_scale=clock_burst_scale(vdd, self._tech)
            )
        if vdd <= 0:
            raise ValueError(f"vdd must be positive, got {vdd}")
        currents = [CurrentWaveform(load, vdd) for load in loads]
        if self._circuit is None:
            self._circuit = self._builder.build(1.0, [0.0] * len(TILE_NODES))
        result, method, dt_s = guarded_transient(
            self._circuit,
            self._window_s,
            self._dt_s,
            isource_waveforms=currents,
            vsource_values=(vdd,),
        )

        peaks = np.empty(len(TILE_NODES))
        avgs = np.empty(len(TILE_NODES))
        for i, node in enumerate(TILE_NODES):
            v = result.voltage(node)
            psn_pct = (vdd - v) / vdd * 100.0
            # Droop (undershoot) is the reliability hazard; overshoot is
            # clipped as in the paper's percent-noise plots.
            psn_pct = np.clip(psn_pct, 0.0, None)
            peaks[i] = float(np.max(psn_pct))
            avgs[i] = float(np.mean(psn_pct))
        return DomainPsnReport(
            vdd=vdd,
            peak_psn_pct=peaks,
            avg_psn_pct=avgs,
            solver_method=method,
            solver_dt_s=dt_s,
        )

    def pair_analysis(
        self,
        vdd: float,
        load_a: TileLoad,
        load_b: TileLoad,
        hops: int,
    ) -> DomainPsnReport:
        """Analyse a two-task placement at 1 or 2 hops (Fig. 3b setup).

        Tiles 0 and 1 of the 2x2 block are one hop apart (direct grid
        segment); tiles 0 and 3 are diagonal, i.e. two hops.
        """
        if hops == 1:
            positions = (0, 1)
        elif hops == 2:
            positions = (0, 3)
        else:
            raise ValueError("hops must be 1 or 2 within a 2x2 domain")
        loads = [TileLoad.idle() for _ in TILE_NODES]
        loads[positions[0]] = load_a
        loads[positions[1]] = load_b
        return self.analyze(vdd, loads)
