"""Builds the Fig. 2 power-delivery network of one power-supply domain.

Topology (per the paper's Section 3.3/3.4):

* a domain power source (ideal Vdd) feeds four per-tile regulator branches,
  each a series bump resistance ``Rb`` and bump inductance ``Lb``;
* the four tile supply nodes are coupled by on-chip grid wire segments
  (``Rc`` in series with a small wire inductance) along the four edges of
  the 2x2 tile block - adjacent tiles share a direct segment, diagonal
  tiles couple only through two-segment paths, which is what makes 2-hop
  interference weaker than 1-hop interference (Fig. 3b);
* each tile has decoupling capacitance ``Cdecap`` to ground;
* the workload of each tile is a current source pulling from the tile node.

Domains are physically separated (no inter-domain PDN interference), so the
whole-chip analysis decomposes into independent per-domain circuits.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.chip.technology import TechnologyNode
from repro.pdn.circuit import GROUND, Circuit, Waveform

#: Node names of the four tile supply rails, in the domain's row-major
#: tile order: index 0 = top-left, 1 = top-right, 2 = bottom-left,
#: 3 = bottom-right of the 2x2 block.
TILE_NODES = ("tile0", "tile1", "tile2", "tile3")

#: Pairs of tile indices joined by a direct grid segment (the four edges
#: of the 2x2 block; diagonals (0,3) and (1,2) are not directly wired).
_GRID_EDGES = ((0, 1), (2, 3), (0, 2), (1, 3))


class DomainPdnBuilder:
    """Constructs the per-domain PDN circuit for a technology node.

    Args:
        tech: Technology node providing Rb, Lb, Rc, grid inductance and
            decap values.
    """

    def __init__(self, tech: TechnologyNode):
        self._tech = tech

    @property
    def tech(self) -> TechnologyNode:
        return self._tech

    def build(self, vdd: float, tile_currents: Sequence[Waveform]) -> Circuit:
        """Create the domain circuit with the given tile load currents.

        Args:
            vdd: Domain supply voltage in volts.
            tile_currents: One waveform per tile (constant amperes or a
                vectorised callable of time); exactly four entries.

        Returns:
            The assembled :class:`~repro.pdn.circuit.Circuit`; tile supply
            rails are the :data:`TILE_NODES` nodes.
        """
        if vdd <= 0:
            raise ValueError(f"vdd must be positive, got {vdd}")
        if len(tile_currents) != len(TILE_NODES):
            raise ValueError(
                f"expected {len(TILE_NODES)} tile currents, got {len(tile_currents)}"
            )
        tech = self._tech
        circuit = Circuit()
        circuit.vsource("vsrc", GROUND, vdd)
        for i, node in enumerate(TILE_NODES):
            mid = f"bump{i}"
            circuit.resistor("vsrc", mid, tech.r_bump_ohm)
            circuit.inductor(mid, node, tech.l_bump_h)
            circuit.capacitor(node, GROUND, tech.c_decap_f)
            circuit.isource(node, GROUND, tile_currents[i])
        for a, b in _GRID_EDGES:
            mid = f"grid{a}{b}"
            circuit.resistor(TILE_NODES[a], mid, tech.r_grid_ohm)
            circuit.inductor(mid, TILE_NODES[b], tech.l_grid_h)
        return circuit

    def tile_nodes(self) -> List[str]:
        """The four tile supply-rail node names."""
        return list(TILE_NODES)

    def impedance_profile(
        self, frequencies_hz, tile_index: int = 0
    ):
        """Small-signal input impedance |Z(f)| at one tile's supply rail.

        Builds the domain PDN with no workload (AC analysis is load
        independent) and sweeps the given frequencies.  The curve peaks
        at the bump-inductance/decap anti-resonance reported by
        :meth:`resonance_hz`.
        """
        circuit = self.build(1.0, [0.0] * len(TILE_NODES))
        return circuit.ac_impedance(TILE_NODES[tile_index], frequencies_hz)

    def resonance_hz(self) -> float:
        """Natural frequency of one tile's bump-L / decap-C tank.

        Useful for choosing transient windows and interpreting why
        misaligned switching between neighbouring tiles excites larger
        droops than aligned switching.
        """
        import math

        return 1.0 / (
            2.0 * math.pi * math.sqrt(self._tech.l_bump_h * self._tech.c_decap_f)
        )
