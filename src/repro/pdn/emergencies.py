"""Voltage-emergency (VE) detection and occurrence model.

The paper treats PSN above 5 % of the supply voltage as a voltage
emergency (following Reddi et al. [12]): a timing violation that corrupts
the thread running on the affected tile, forcing a rollback to the last
checkpoint (Section 4.5).

At the system level a VE is not a single event but a *rate*: while a
tile's peak noise exceeds the margin, each noise excursion beyond the
margin is a chance of a timing error.  We model the expected VE rate as
growing with the exceedance (excursions above the threshold become both
more frequent and deeper as peak PSN rises), and let the runtime sample
actual occurrences from a Poisson process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: PSN threshold for a voltage emergency, percent of Vdd (paper Section 5.1).
VE_THRESHOLD_PCT = 5.0

#: Clamp on the Poisson mean of one sampling interval.  numpy's
#: ``Generator.poisson`` raises (and ``int()`` of its float path can
#: overflow) for pathological rate x duration products; a tile that
#: would see a billion emergencies in one interval is saturated for
#: every practical purpose anyway.
MAX_POISSON_MEAN = 1e9


@dataclass(frozen=True)
class VoltageEmergencyPolicy:
    """Expected-rate model for voltage emergencies.

    Attributes:
        threshold_pct: VE threshold in percent of Vdd.
        rate_per_pct_s: Expected VEs per second per percent of exceedance.
            The default is calibrated so that a tile sitting a few
            percent above the margin loses a noticeable fraction of its
            throughput to rollbacks (the paper's Fig. 6 effect) without
            livelocking the application.
    """

    threshold_pct: float = VE_THRESHOLD_PCT
    rate_per_pct_s: float = 0.8

    def __post_init__(self) -> None:
        if self.threshold_pct <= 0:
            raise ValueError("threshold_pct must be positive")
        if self.rate_per_pct_s < 0:
            raise ValueError("rate_per_pct_s must be non-negative")

    def is_emergency(self, peak_psn_pct: float) -> bool:
        """Whether a peak PSN level constitutes a voltage emergency."""
        return peak_psn_pct > self.threshold_pct

    def expected_rate_hz(self, peak_psn_pct: float) -> float:
        """Expected VE occurrences per second at a sustained noise level.

        Zero at or below the threshold; grows quadratically with the
        exceedance (excursions get more frequent *and* deeper).

        Raises:
            ValueError: for a NaN/inf noise level - always an upstream
                modelling bug, and letting it through would poison the
                Poisson sampling downstream.
        """
        if not math.isfinite(peak_psn_pct):
            raise ValueError(
                f"peak_psn_pct must be finite, got {peak_psn_pct!r}"
            )
        exceed = max(0.0, peak_psn_pct - self.threshold_pct)
        return self.rate_per_pct_s * exceed * (1.0 + exceed)

    def sample_emergencies(
        self,
        peak_psn_pct: float,
        duration_s: float,
        rng: np.random.Generator,
    ) -> int:
        """Number of VEs on a tile over ``duration_s`` at a noise level."""
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        rate = self.expected_rate_hz(peak_psn_pct)
        if rate <= 0.0 or duration_s <= 0.0:
            return 0
        mean = min(rate * duration_s, MAX_POISSON_MEAN)
        return int(rng.poisson(mean))
