"""Workload-to-current waveform models for PDN transient analysis.

The paper models the workload on a tile as a current source whose value is
derived from the power consumption of the core and the NoC router in the
tile (Section 3.4), and bins tasks into "High" and "Low" switching activity
(Section 3.5).  This module turns an operating point (core power, router
power, Vdd, activity bin) into a time-domain supply-current waveform:

* the mean current is ``P / Vdd`` (so the resistive IR component of PSN
  tracks power consumption);
* on top of the mean, the core current swings in bursts at a
  bin-dependent burst frequency with bin-dependent swing and edge
  sharpness - High-activity tasks switch larger currents with faster
  edges (larger di/dt), which drives the inductive-droop component;
* the router contributes a finer-grained (per-flit-burst) component.

Two conventions encode the paper's proximity observations (see
:data:`repro.pdn.transient.SAME_BIN_JITTER_S`):

* threads with the *same* activity bin run barrier-synchronised code, so
  their bursts are nearly phase-aligned (a small fixed jitter apart) -
  their supply rings mostly cancel through the shared on-chip grid;
* tasks in *different* bins burst at different frequencies, so their
  current edges sweep through worst-case coincidence within any analysis
  window, ringing the bump-inductance/decap tank of both tiles at once.
  This is what makes High-Low neighbours interfere more than
  High-High/Low-Low pairs (Fig. 3b).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np


class ActivityBin(enum.Enum):
    """Switching-activity class of a task (Section 3.5)."""

    HIGH = "high"
    LOW = "low"

    @property
    def is_high(self) -> bool:
        return self is ActivityBin.HIGH


@dataclass(frozen=True)
class BinWaveParams:
    """Burst-waveform parameters of one activity bin.

    Attributes:
        burst_hz: Burst repetition frequency of the core current.
        swing: Peak current swing as a fraction of the mean (0..1).
        sharpness: Edge sharpness of the burst waveform; higher values
            mean faster edges and therefore larger di/dt.
    """

    burst_hz: float
    swing: float
    sharpness: float

    def __post_init__(self) -> None:
        if self.burst_hz <= 0:
            raise ValueError("burst_hz must be positive")
        if not 0.0 <= self.swing < 1.0:
            raise ValueError("swing must be in [0, 1)")
        if self.sharpness <= 0:
            raise ValueError("sharpness must be positive")


#: Calibrated burst parameters per activity bin.  The two bins use
#: *different* burst frequencies so that cross-bin neighbours sweep
#: through worst-case edge alignment within one analysis window.
BIN_WAVE_PARAMS = {
    ActivityBin.HIGH: BinWaveParams(burst_hz=120e6, swing=0.30, sharpness=4.5),
    ActivityBin.LOW: BinWaveParams(burst_hz=75e6, swing=0.27, sharpness=4.5),
}

#: Router (NoC) current component: per-flit bursts are much finer grained
#: than core compute bursts.
ROUTER_WAVE_PARAMS = BinWaveParams(burst_hz=500e6, swing=0.27, sharpness=4.0)


@dataclass(frozen=True)
class TileLoad:
    """Electrical workload of one tile at an operating point.

    Attributes:
        core_power_w: Core power draw in watts (0 for an idle tile).
        router_power_w: Router power draw in watts.
        activity_bin: Switching-activity bin of the task on the core.
        phase_s: Burst phase offset in seconds.
        freq_scale: Multiplier on the bin's burst frequency.  Task bursts
            are not phase-locked across cores, so analyses detune each
            tile position slightly (see
            :func:`repro.pdn.transient.position_variation`); this makes
            same-bin neighbours sweep through all relative alignments
            within one analysis window instead of sitting at an arbitrary
            fixed phase.
    """

    core_power_w: float
    router_power_w: float
    activity_bin: ActivityBin
    phase_s: float = 0.0
    freq_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.core_power_w < 0 or self.router_power_w < 0:
            raise ValueError("power must be non-negative")
        if self.freq_scale <= 0:
            raise ValueError("freq_scale must be positive")

    @classmethod
    def idle(cls) -> "TileLoad":
        """A dark (power-gated) tile."""
        return cls(0.0, 0.0, ActivityBin.LOW)

    @property
    def total_power_w(self) -> float:
        return self.core_power_w + self.router_power_w


class CurrentWaveform:
    """Vectorised supply-current waveform of one tile.

    Callable mapping a time array (seconds) to a current array (amperes),
    suitable as a :class:`~repro.pdn.circuit.Circuit` current source.

    Args:
        load: The tile workload.
        vdd: Supply voltage in volts; sets the mean current ``P / Vdd``.
    """

    def __init__(self, load: TileLoad, vdd: float):
        if vdd <= 0:
            raise ValueError(f"vdd must be positive, got {vdd}")
        self._load = load
        self._vdd = vdd
        self._core_mean = load.core_power_w / vdd
        self._router_mean = load.router_power_w / vdd
        self._params = BIN_WAVE_PARAMS[load.activity_bin]

    @property
    def mean_amps(self) -> float:
        """Time-average current (``P / Vdd``)."""
        return self._core_mean + self._router_mean

    def __call__(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        load = self._load
        # Only the core component tracks the clock: router current bursts
        # are per-flit events whose electrical timescale is set by link
        # serialisation, and letting them sweep through the bump/decap
        # tank resonance with Vdd would be an artefact.
        return self._component(
            t, self._core_mean, self._params, load.phase_s, load.freq_scale
        ) + self._component(
            t, self._router_mean, ROUTER_WAVE_PARAMS, load.phase_s, 1.0
        )

    @staticmethod
    def _component(
        t: np.ndarray,
        mean: float,
        params: BinWaveParams,
        phase_s: float,
        freq_scale: float,
    ) -> np.ndarray:
        if mean <= 0.0:
            return np.zeros_like(t)
        # tanh(k * sin(...)) is a smooth square wave with zero mean and
        # unit amplitude (up to tanh(k)); its edge di/dt scales with both
        # the burst frequency and the sharpness k.
        angle = 2.0 * math.pi * params.burst_hz * freq_scale * (t - phase_s)
        burst = np.tanh(params.sharpness * np.sin(angle)) / math.tanh(
            params.sharpness
        )
        return mean * (1.0 + params.swing * burst)


def waveform_for(
    load: TileLoad, vdd: float
) -> Callable[[np.ndarray], np.ndarray]:
    """Convenience wrapper returning the circuit-ready waveform callable."""
    return CurrentWaveform(load, vdd)
