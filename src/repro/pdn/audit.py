"""Chip-level transient PSN audit of a mapping (slow-path validation).

The runtime uses the fast fitted kernels; this module re-evaluates a
concrete chip occupancy with the ground-truth MNA transient solver,
domain by domain (domains are electrically independent, Section 3.3).
Use it to audit a mapping decision offline, or to quantify the fast
model's error on exactly the configurations a manager produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.apps.graph import ApplicationGraph
from repro.chip.cmp import ChipDescription
from repro.core.base import MappingDecision
from repro.pdn.fast import FastPsnModel
from repro.pdn.transient import PsnTransientAnalysis
from repro.pdn.waveforms import TileLoad


@dataclass(frozen=True)
class ChipPsnAudit:
    """Per-tile PSN of one mapping from the transient solver.

    Attributes:
        peak_psn_pct: Peak PSN per tile (zeros for dark domains).
        avg_psn_pct: Average PSN per tile.
        fast_peak_psn_pct: The fast model's estimate on the same loads,
            for error analysis.
    """

    peak_psn_pct: np.ndarray
    avg_psn_pct: np.ndarray
    fast_peak_psn_pct: np.ndarray

    @property
    def chip_peak_pct(self) -> float:
        return float(np.max(self.peak_psn_pct))

    @property
    def fast_model_peak_error_pct(self) -> float:
        """Worst absolute per-tile disagreement between the fast kernel
        and the transient solver, in PSN percentage points."""
        return float(
            np.max(np.abs(self.peak_psn_pct - self.fast_peak_psn_pct))
        )


def audit_mapping(
    chip: ChipDescription,
    decision: MappingDecision,
    graph: ApplicationGraph,
    router_flits_per_cycle: Optional[Sequence[float]] = None,
    window_s: float = 300e-9,
    dt_s: float = 50e-12,
) -> ChipPsnAudit:
    """Run the transient solver over every domain a mapping occupies.

    Args:
        chip: The platform.
        decision: The mapping to audit.
        graph: The application graph at the decision's DoP.
        router_flits_per_cycle: Optional per-tile router activity (e.g.
            from :class:`~repro.noc.analytical.AnalyticalNocModel`);
            zeros when omitted.
        window_s, dt_s: Transient analysis window and step.

    Returns:
        The :class:`ChipPsnAudit`.
    """
    if router_flits_per_cycle is None:
        router_rates = np.zeros(chip.tile_count)
    else:
        router_rates = np.asarray(list(router_flits_per_cycle), dtype=float)
        if router_rates.shape != (chip.tile_count,):
            raise ValueError(
                f"need {chip.tile_count} router rates, got {router_rates.shape}"
            )

    analysis = PsnTransientAnalysis(chip.tech, window_s=window_s, dt_s=dt_s)
    fast = FastPsnModel()
    power_model = chip.power_model
    vdd = decision.vdd

    tile_task: Dict[int, int] = {
        tile: task for task, tile in decision.task_to_tile.items()
    }
    peak = np.zeros(chip.tile_count)
    avg = np.zeros(chip.tile_count)
    fast_peak = np.zeros(chip.tile_count)

    domains = {chip.domains.domain_of(t) for t in decision.tiles}
    # Idle domains carrying through-traffic still see router noise; the
    # NoC keeps their routers powered at the lowest DVS step (matching
    # the runtime's convention).
    traffic_domains = {
        chip.domains.domain_of(t)
        for t in chip.mesh.tiles()
        if router_rates[t] > 0
    } - domains
    for domain in sorted(domains | traffic_domains):
        domain_vdd = (
            vdd if domain in domains else chip.vdd_ladder.lowest
        )
        tiles = chip.domains.tiles_of(domain)
        loads = []
        for tile in tiles:
            rate = float(router_rates[tile])
            router_power = (
                power_model.router_dynamic(rate, domain_vdd)
                + power_model.router_leakage(domain_vdd)
                if rate > 0 or tile in tile_task
                else 0.0
            )
            task_id = tile_task.get(tile)
            if task_id is None:
                loads.append(
                    TileLoad(0.0, router_power, TileLoad.idle().activity_bin)
                )
                continue
            task = graph.task(task_id)
            core_power = power_model.core_dynamic(
                task.activity_factor, domain_vdd
            ) + power_model.core_leakage(domain_vdd)
            loads.append(
                TileLoad(core_power, router_power, task.activity_bin)
            )
        report = analysis.analyze(domain_vdd, loads)
        fast_estimate, _ = fast.domain_psn(domain_vdd, loads)
        for i, tile in enumerate(tiles):
            peak[tile] = report.peak_psn_pct[i]
            avg[tile] = report.avg_psn_pct[i]
            fast_peak[tile] = fast_estimate[i]

    return ChipPsnAudit(
        peak_psn_pct=peak, avg_psn_pct=avg, fast_peak_psn_pct=fast_peak
    )
