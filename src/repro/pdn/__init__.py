"""Power delivery network modelling and power-supply-noise estimation.

The paper models its PDN in SPICE (Section 3.4, Fig. 2): every tile is fed
from a per-tile voltage-regulator branch (bump resistance Rb and inductance
Lb), tiles inside a 2x2 power domain are coupled by on-chip grid wires (Rc)
and decoupling capacitance (Cdecap), and the workload on a tile is modelled
as a current source derived from the core + router power consumption.  PSN
at tile *i* is ``(Vbump - V_Ti) / Vbump`` (Eq. 1); noise above 5 % of the
supply is a voltage emergency.

This package rebuilds that stack from scratch:

* :mod:`repro.pdn.circuit`     - a small modified-nodal-analysis transient
  solver (R, L, C, current/voltage sources; trapezoidal or backward Euler);
* :mod:`repro.pdn.builder`     - nets up the Fig. 2 domain PDN;
* :mod:`repro.pdn.waveforms`   - tile current waveforms from workload
  activity (switching-activity bins, burst frequencies, phases);
* :mod:`repro.pdn.transient`   - runs the "SPICE" analysis and extracts
  per-tile peak/average PSN;
* :mod:`repro.pdn.fast`        - a fast interference-kernel PSN model whose
  constants are calibrated against the transient solver;
* :mod:`repro.pdn.calibrate`   - the calibration fit;
* :mod:`repro.pdn.sensors`     - quantised on-die PSN sensor readings;
* :mod:`repro.pdn.emergencies` - voltage-emergency detection and rates;
* :mod:`repro.pdn.audit`       - whole-mapping transient audits (import
  directly; it depends on :mod:`repro.apps` and :mod:`repro.core`, so it
  is not re-exported here).
"""

from repro.pdn.circuit import Circuit, TransientResult
from repro.pdn.builder import DomainPdnBuilder, TILE_NODES
from repro.pdn.waveforms import ActivityBin, TileLoad, CurrentWaveform
from repro.pdn.transient import (
    DomainPsnReport,
    PsnTransientAnalysis,
    apply_phase_convention,
)
from repro.pdn.fast import FastPsnModel, KernelLadder, PsnKernel
from repro.pdn.sensors import SensorNetwork
from repro.pdn.emergencies import VoltageEmergencyPolicy, VE_THRESHOLD_PCT

__all__ = [
    "Circuit",
    "TransientResult",
    "DomainPdnBuilder",
    "TILE_NODES",
    "ActivityBin",
    "TileLoad",
    "CurrentWaveform",
    "DomainPsnReport",
    "PsnTransientAnalysis",
    "apply_phase_convention",
    "FastPsnModel",
    "KernelLadder",
    "PsnKernel",
    "SensorNetwork",
    "VoltageEmergencyPolicy",
    "VE_THRESHOLD_PCT",
]
