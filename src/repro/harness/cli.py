"""``python -m repro campaign`` - supervised campaign entry point.

Usage::

    python -m repro campaign --checkpoint cp.json               # run
    python -m repro campaign --checkpoint cp.json --resume      # resume
    python -m repro campaign --checkpoint cp.json --resume \\
        --retry-failed                       # resume, re-run failures
    python -m repro campaign --checkpoint cp.json --status      # inspect
    python -m repro campaign --checkpoint cp.json \\
        --workers 4                  # parallel, byte-identical to serial
    python -m repro campaign --checkpoint cp.json \\
        --frameworks HM+XY PARM+PANR --workloads compute mixed \\
        --intervals 0.2 0.1 --seeds 1 2 --n-apps 12 \\
        --deadline-s 600 --retries 2 \\
        --json-out table.json --output campaign.md

Exit codes: ``0`` - campaign ran to completion (failed cells, if any,
are listed in the report); ``2`` - configuration or checkpoint error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.faults.recovery import RecoveryPolicy
from repro.harness.errors import CheckpointCorrupt, ConfigError
from repro.harness.supervisor import (
    CampaignCell,
    CampaignOutcome,
    CampaignSupervisor,
    SupervisorPolicy,
)

#: Default campaign grid: the headline comparison pair over the mixed
#: workload at the Fig. 8 arrival intervals.
DEFAULT_FRAMEWORKS = ("HM+XY", "PARM+PANR")
DEFAULT_WORKLOADS = ("mixed",)
DEFAULT_INTERVALS = (0.2, 0.1)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description=(
            "Run a supervised, crash-safe experiment campaign "
            "(see docs/robustness.md)"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        required=True,
        metavar="PATH",
        help="campaign checkpoint file (written after every cell)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore checkpointed cells (completed AND failed) instead "
        "of re-executing them; failed cells stay failed unless "
        "--retry-failed is also given",
    )
    parser.add_argument(
        "--retry-failed",
        action="store_true",
        help="with --resume, re-execute cells checkpointed as failed "
        "(fresh retry budget) instead of restoring them as "
        "permanently failed",
    )
    parser.add_argument(
        "--status",
        action="store_true",
        help="print checkpoint progress and exit without running",
    )
    parser.add_argument(
        "--frameworks",
        nargs="+",
        default=list(DEFAULT_FRAMEWORKS),
        metavar="NAME",
        help="framework names (default: %(default)s)",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(DEFAULT_WORKLOADS),
        metavar="TYPE",
        help="workload types (default: %(default)s)",
    )
    parser.add_argument(
        "--intervals",
        nargs="+",
        type=float,
        default=list(DEFAULT_INTERVALS),
        metavar="SECONDS",
        help="arrival intervals in seconds (default: %(default)s)",
    )
    parser.add_argument(
        "--seeds",
        nargs="+",
        type=int,
        default=[1, 2, 3],
        metavar="SEED",
        help="workload seeds per cell (default: %(default)s)",
    )
    parser.add_argument(
        "--n-apps",
        type=int,
        default=12,
        metavar="N",
        help="applications per sequence (default: %(default)s)",
    )
    parser.add_argument(
        "--deadline-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell watchdog deadline (default: none)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retry budget per cell beyond the first attempt "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for cell execution; results and "
        "checkpoints are byte-identical to a serial run "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        help="write the final result table as canonical JSON",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="write the campaign report as markdown",
    )
    return parser


def build_cells(args: argparse.Namespace) -> List[CampaignCell]:
    """The campaign grid: frameworks x workloads x intervals."""
    return [
        CampaignCell(
            framework=fw,
            workload=wl,
            arrival_interval_s=interval,
            n_apps=args.n_apps,
            seeds=tuple(args.seeds),
        )
        for fw in args.frameworks
        for wl in args.workloads
        for interval in args.intervals
    ]


def _print_status(supervisor: CampaignSupervisor) -> None:
    status = supervisor.status()
    print(f"checkpoint: {status['checkpoint']}")
    if not status["exists"]:
        print("no checkpoint on disk; every cell is pending")
    print(
        f"cells: {status['cells']}  completed: {status['completed']}  "
        f"failed: {status['failed']}  pending: {status['pending']}"
    )


def _print_summary(outcome: CampaignOutcome) -> None:
    executed = len(outcome.outcomes) - outcome.restored_count
    print(
        f"campaign finished: {len(outcome.outcomes)} cell(s), "
        f"{len(outcome.completed_cells)} completed, "
        f"{len(outcome.failed_cells)} failed "
        f"({outcome.restored_count} restored from checkpoint, "
        f"{executed} executed)"
    )
    for cell_outcome in outcome.failed_cells:
        last = cell_outcome.attempts[-1] if cell_outcome.attempts else None
        detail = (
            f"{last.error_type}: {last.error_message}" if last else "unknown"
        )
        print(f"  failed cell {cell_outcome.cell.label}: {detail}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.retry_failed and not args.resume:
        print(
            "configuration error: --retry-failed requires --resume",
            file=sys.stderr,
        )
        return 2

    try:
        supervisor = CampaignSupervisor(
            build_cells(args),
            args.checkpoint,
            policy=SupervisorPolicy(
                recovery=RecoveryPolicy(max_remap_retries=args.retries),
                deadline_s=args.deadline_s,
            ),
            workers=args.workers,
        )
    except (ConfigError, ValueError) as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return 2

    if args.status:
        try:
            _print_status(supervisor)
        except CheckpointCorrupt as exc:
            print(f"checkpoint error: {exc}", file=sys.stderr)
            return 2
        return 0

    try:
        outcome = supervisor.run(
            resume=args.resume, retry_failed=args.retry_failed
        )
    except ConfigError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return 2
    except CheckpointCorrupt as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 2

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(outcome.table_json())
        print(f"wrote {args.json_out}")
    if args.output:
        from repro.exp.report import campaign_markdown

        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(campaign_markdown(outcome))
        print(f"wrote {args.output}")
    _print_summary(outcome)
    return 0


if __name__ == "__main__":
    sys.exit(main())
