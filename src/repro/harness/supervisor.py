"""Crash-safe, resumable supervision of experiment campaigns.

The paper's evaluation (Figs. 6-10) is a long sweep of frameworks x
workloads x arrival intervals x seeds.  Before this module, one
``LinAlgError`` from a near-singular MNA matrix - or one hung transient
solve - killed the whole campaign with no partial results.  The
supervisor runs each (framework, workload, interval) *cell* as a
resumable unit:

* **content-hashed cell keys** - a cell's identity is the SHA-256 of
  its canonical spec, so a checkpoint survives reordering, subsetting,
  or extension of the campaign, and a spec change naturally invalidates
  only the cells it touches;
* **versioned JSON checkpoints** - progress is persisted after every
  cell through :func:`repro.runtime.checkpoint.save_payload`
  (schema-versioned, SHA-256-checksummed, atomically replaced), so a
  SIGKILL at any instant loses at most the in-flight cell and
  ``run(resume=True)`` re-executes nothing that already finished;
* **deadline watchdogs** - each cell runs on a daemon worker thread
  with a bounded ``join``; exceeding the deadline surfaces as
  :class:`~repro.harness.errors.SimTimeout` instead of a hang.  Python
  threads cannot be killed, so a timed-out worker is *abandoned*: it
  may keep consuming CPU until its solve finishes on its own.  To keep
  abandoned work from racing live work on shared state, the default
  cell runner (and its shared chip / profile-library cache) is
  discarded and rebuilt fresh after every timeout; a custom
  ``cell_runner`` is kept and must tolerate abandoned attempts;
* **bounded retries with seeded backoff** - retry budget and backoff
  curve reuse :class:`~repro.faults.recovery.RecoveryPolicy` semantics;
  jitter is seeded from the cell's content hash
  (:meth:`RecoveryPolicy.jittered_backoff_s`), so the schedule is
  deterministic and parmlint-clean (no wall clock, no global RNG).
  Delays are *recorded* as provenance; actually sleeping is opt-in via
  an injectable ``sleep_fn`` so tests and replays stay instant;
* **salvage** - completed cells always make it into the final
  :class:`CampaignOutcome` table; cells that exhaust their retry budget
  are listed in ``failed_cells`` with their full attempt history.

The result table serialisation is deterministic (sorted keys, no
timestamps), so an interrupted-then-resumed campaign produces output
byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import threading
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.faults.recovery import RecoveryPolicy
from repro.harness.errors import (
    ConfigError,
    ReproError,
    SimTimeout,
    jsonable_context,
)
from repro.runtime.checkpoint import load_payload, save_payload

#: Schema name / version of the campaign checkpoint payload.
CAMPAIGN_SCHEMA = "parm-campaign"
CAMPAIGN_VERSION = 1

#: Hex digits of the cell content hash kept as the cell key.
_KEY_HEX_DIGITS = 16


@runtime_checkable
class SupervisedCell(Protocol):
    """Structural contract of anything the supervisor can run.

    The supervisor machinery (checkpointing, retry, watchdog, parallel
    fan-out) touches a cell only through this surface, so any frozen,
    picklable value type implementing it can ride the campaign
    infrastructure - :class:`CampaignCell` is the canonical
    implementation, and the sequential verifier's
    :class:`~repro.exp.verify.sequential.ReplicaCell` reuses the whole
    stack (checkpoints, resume, workers) without subclassing.
    """

    @property
    def key(self) -> str:
        """Content-hashed identity (stable across processes)."""
        ...

    @property
    def label(self) -> str:
        """Human-readable name for logs and failure records."""
        ...

    def spec(self) -> Dict[str, Any]:
        """Canonical JSON spec (the input to the content hash)."""
        ...

    def validate(self) -> None:
        """Raise :class:`~repro.harness.errors.ConfigError` if unrunnable."""
        ...


#: A cell runner maps a cell spec to its result row (plain JSON types).
CellRunner = Callable[["SupervisedCell"], Dict[str, Any]]


@dataclass(frozen=True)
class CampaignCell:
    """One resumable unit of a campaign: a ``run_framework`` call.

    Attributes:
        framework: Evaluation framework name (e.g. ``"PARM+PANR"``).
        workload: Workload-type value (e.g. ``"compute"``).
        arrival_interval_s: Inter-application arrival interval.
        n_apps: Applications per sequence.
        seeds: One simulation per seed; results are seed-averaged.
    """

    framework: str
    workload: str
    arrival_interval_s: float
    n_apps: int = 20
    seeds: Tuple[int, ...] = (1, 2, 3)

    def validate(self) -> None:
        """Raise :class:`ConfigError` unless the cell can run."""
        from repro.apps.workload import WorkloadType
        from repro.exp.frameworks import framework as fw_lookup

        try:
            fw_lookup(self.framework)
        except KeyError as exc:
            raise ConfigError(
                "unknown framework", framework=self.framework
            ) from exc
        try:
            WorkloadType(self.workload)
        except ValueError as exc:
            raise ConfigError(
                "unknown workload type", workload=self.workload
            ) from exc
        if not self.seeds:
            raise ConfigError("cell needs at least one seed", **self._where())
        if self.n_apps <= 0:
            raise ConfigError(
                "n_apps must be positive", n_apps=self.n_apps, **self._where()
            )
        if not np.isfinite(self.arrival_interval_s) or (
            self.arrival_interval_s <= 0
        ):
            raise ConfigError(
                "arrival_interval_s must be positive and finite",
                arrival_interval_s=self.arrival_interval_s,
                **self._where(),
            )

    def _where(self) -> Dict[str, str]:
        return {"framework": self.framework, "workload": self.workload}

    def spec(self) -> Dict[str, Any]:
        """Canonical JSON spec (the input to the content hash)."""
        return {
            "framework": self.framework,
            "workload": self.workload,
            "arrival_interval_s": float(self.arrival_interval_s),
            "n_apps": int(self.n_apps),
            "seeds": [int(s) for s in self.seeds],
        }

    @property
    def key(self) -> str:
        """Content-hashed cell identity (stable across processes)."""
        canonical = json.dumps(
            {"schema": CAMPAIGN_SCHEMA, "spec": self.spec()},
            sort_keys=True,
            separators=(",", ":"),
        )
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        return digest[:_KEY_HEX_DIGITS]

    @property
    def label(self) -> str:
        """Human-readable cell name for logs and reports."""
        return (
            f"{self.framework}/{self.workload}"
            f"@{self.arrival_interval_s:g}s"
        )

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "CampaignCell":
        return cls(
            framework=str(spec["framework"]),
            workload=str(spec["workload"]),
            arrival_interval_s=float(spec["arrival_interval_s"]),
            n_apps=int(spec["n_apps"]),
            seeds=tuple(int(s) for s in spec["seeds"]),
        )


@dataclass(frozen=True)
class SupervisorPolicy:
    """Retry, backoff and watchdog limits of one supervised campaign.

    Attributes:
        recovery: Retry budget and backoff curve; the campaign reuses
            the fault-recovery semantics (``1 + max_remap_retries``
            attempts per cell, exponential backoff between them).
        deadline_s: Per-cell wall-clock watchdog; ``None`` disables it.
        jitter_fraction: Multiplicative backoff jitter amplitude, seeded
            from the cell key (see
            :meth:`RecoveryPolicy.jittered_backoff_s`).
    """

    recovery: RecoveryPolicy = field(
        default_factory=lambda: RecoveryPolicy(max_remap_retries=2)
    )
    deadline_s: Optional[float] = None
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")

    @property
    def max_attempts(self) -> int:
        """Total attempts per cell (the first try plus retries)."""
        return 1 + self.recovery.max_remap_retries

    def backoff_schedule_s(self, cell_key: str) -> List[float]:
        """Deterministic jittered delay before each retry of one cell."""
        rng = np.random.default_rng(int(cell_key, 16))
        return [
            self.recovery.jittered_backoff_s(i, rng, self.jitter_fraction)
            for i in range(self.recovery.max_remap_retries)
        ]


@dataclass(frozen=True)
class CellAttempt:
    """Provenance of one failed attempt at a cell."""

    index: int
    error_type: str
    error_message: str
    context: Dict[str, Any]
    #: Backoff recorded before the following attempt (0 after the last).
    backoff_s: float

    def to_json(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "context": self.context,
            "backoff_s": self.backoff_s,
        }

    @classmethod
    def from_json(cls, record: Dict[str, Any]) -> "CellAttempt":
        return cls(
            index=int(record["index"]),
            error_type=str(record["error_type"]),
            error_message=str(record["error_message"]),
            context=dict(record["context"]),
            backoff_s=float(record["backoff_s"]),
        )


#: Terminal cell states.
COMPLETED = "completed"
FAILED = "failed"


@dataclass(frozen=True)
class CellOutcome:
    """Terminal state of one cell, with full attempt provenance.

    ``from_checkpoint`` marks cells restored rather than executed in
    this process; it is deliberately *not* serialised into the result
    table, so resumed and uninterrupted campaigns emit identical bytes.
    """

    cell: SupervisedCell
    status: str
    result: Optional[Dict[str, Any]]
    attempts: Tuple[CellAttempt, ...] = ()
    from_checkpoint: bool = False

    @property
    def completed(self) -> bool:
        return self.status == COMPLETED


@dataclass(frozen=True)
class CampaignOutcome:
    """Final state of a campaign: salvage table plus failure provenance."""

    outcomes: Tuple[CellOutcome, ...]

    @property
    def completed_cells(self) -> Tuple[CellOutcome, ...]:
        return tuple(o for o in self.outcomes if o.completed)

    @property
    def failed_cells(self) -> Tuple[CellOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.completed)

    @property
    def restored_count(self) -> int:
        """Cells restored from the checkpoint instead of re-executed."""
        return sum(1 for o in self.outcomes if o.from_checkpoint)

    def table(self) -> Dict[str, Any]:
        """The final report table as plain JSON types.

        Deterministic by construction: cell order follows the campaign
        spec, keys are canonical, and no wall-clock data is included -
        a resumed campaign emits bytes identical to an uninterrupted
        one.
        """
        results = [dict(o.result or {}) for o in self.completed_cells]
        failed = [
            {
                "cell": o.cell.spec(),
                "key": o.cell.key,
                "attempts": [a.to_json() for a in o.attempts],
                "error_type": o.attempts[-1].error_type
                if o.attempts
                else "unknown",
                "error_message": o.attempts[-1].error_message
                if o.attempts
                else "",
            }
            for o in self.failed_cells
        ]
        return {
            "schema": CAMPAIGN_SCHEMA,
            "version": CAMPAIGN_VERSION,
            "results": results,
            "failed_cells": failed,
        }

    def table_json(self) -> str:
        """Canonical serialisation of :meth:`table` (byte-stable)."""
        return json.dumps(self.table(), sort_keys=True, indent=2) + "\n"


def _result_row(cell: CampaignCell, fr: Any) -> Dict[str, Any]:
    """Flatten a :class:`~repro.exp.runner.FrameworkResult` to JSON types.

    The per-run :class:`~repro.runtime.metrics.RunMetrics` detail is
    deliberately dropped: checkpoints carry the seed-averaged table the
    report needs, not megabytes of traces.
    """
    return {
        "cell": cell.spec(),
        "key": cell.key,
        "framework": fr.framework,
        "workload": fr.workload,
        "arrival_interval_s": float(fr.arrival_interval_s),
        "total_time_s": float(fr.total_time_s),
        "peak_psn_pct": float(fr.peak_psn_pct),
        "avg_psn_pct": float(fr.avg_psn_pct),
        "completed": float(fr.completed),
        "dropped": float(fr.dropped),
        "ve_count": float(fr.ve_count),
        "total_time_std_s": float(fr.total_time_std_s),
        "completed_std": float(fr.completed_std),
    }


def default_cell_runner(
    chip: Any = None, library: Any = None
) -> CellRunner:
    """The production cell runner: one ``run_framework`` call per cell.

    The chip description and profile library are built once and shared
    across cells (both are immutable inputs), matching what a manual
    sweep would do.

    Args:
        chip: Optional pre-built chip description (warm worker pools
            pass their shared one); ``None`` builds the default.
        library: Optional pre-built profile library; ``None`` builds a
            fresh one.  Both defaults are deterministic, so a runner
            over pre-built inputs is byte-equivalent to the lazy one.
    """
    from repro.apps.suite import ProfileLibrary
    from repro.apps.workload import WorkloadType
    from repro.chip.cmp import default_chip
    from repro.exp.frameworks import framework as fw_lookup
    from repro.exp.runner import run_framework

    chip = default_chip() if chip is None else chip
    library = ProfileLibrary() if library is None else library

    def run(cell: CampaignCell) -> Dict[str, Any]:
        fr = run_framework(
            fw_lookup(cell.framework),
            WorkloadType(cell.workload),
            cell.arrival_interval_s,
            n_apps=cell.n_apps,
            seeds=cell.seeds,
            chip=chip,
            library=library,
        )
        return _result_row(cell, fr)

    return run


class CellExecutor:
    """Runs single cells with the watchdog / taxonomy / retry semantics.

    This is the execution unit shared by the serial
    :class:`CampaignSupervisor` loop and by the
    :mod:`repro.perf.parallel` process-pool workers: each worker process
    holds exactly one executor, so the default runner's shared chip /
    profile-library cache is built once per process and rebuilt after a
    timeout - exactly the serial semantics, per process.

    A cell's outcome depends only on ``(cell, policy, cell_runner)``:
    the backoff schedule is seeded from the cell's content hash and no
    wall-clock data is recorded, so the same cell produces the same
    outcome in any process, in any order.

    Args:
        policy: Retry/backoff/watchdog limits.
        cell_runner: Override runner; ``None`` builds
            :func:`default_cell_runner` lazily on first use.
        sleep_fn: Called with each recorded backoff delay before a
            retry; ``None`` records the schedule without sleeping.
    """

    def __init__(
        self,
        policy: SupervisorPolicy,
        cell_runner: Optional[CellRunner] = None,
        sleep_fn: Optional[Callable[[float], None]] = None,
    ) -> None:
        self._policy = policy
        self._cell_runner = cell_runner
        self._sleep_fn = sleep_fn
        #: The runner currently in use; rebuilt after a timeout when it
        #: is the (shared-state) default runner.
        self._runner: Optional[CellRunner] = cell_runner

    def run_cell(self, cell: SupervisedCell) -> CellOutcome:
        """Run one cell to a terminal state (retries included)."""
        attempts: List[CellAttempt] = []
        schedule = self._policy.backoff_schedule_s(cell.key)
        for attempt in range(self._policy.max_attempts):
            try:
                result = self._execute(cell)
                return CellOutcome(cell, COMPLETED, result, tuple(attempts))
            except ReproError as exc:
                if isinstance(exc, SimTimeout):
                    self._discard_runner()
                last = attempt == self._policy.max_attempts - 1
                backoff_s = 0.0 if last else schedule[attempt]
                attempts.append(
                    CellAttempt(
                        index=attempt,
                        error_type=type(exc).__name__,
                        error_message=exc.message,
                        context=jsonable_context(exc.context),
                        backoff_s=backoff_s,
                    )
                )
                if not last and self._sleep_fn is not None:
                    self._sleep_fn(backoff_s)
        return CellOutcome(cell, FAILED, None, tuple(attempts))

    def _current_runner(self) -> CellRunner:
        if self._runner is None:
            self._runner = self._cell_runner or default_cell_runner()
        return self._runner

    def prewarm(self, runner: CellRunner) -> None:
        """Adopt a pre-built default runner (warm worker pools).

        Only fills the lazy default slot: a user-supplied
        ``cell_runner`` always wins, and a runner discarded after a
        timeout is rebuilt fresh by :meth:`_current_runner` - the
        adopted runner is never reinstated, preserving the
        discard-on-timeout isolation rule.
        """
        if self._cell_runner is None and self._runner is None:
            self._runner = runner

    def _discard_runner(self) -> None:
        """Drop the default runner after a timed-out attempt.

        The abandoned daemon worker may still be executing against the
        runner's shared state (the chip and ``ProfileLibrary`` cache of
        :func:`default_cell_runner`), so later attempts get a freshly
        built runner and never race it.  A user-supplied ``cell_runner``
        cannot be rebuilt here and is kept (see
        :class:`CampaignSupervisor`).
        """
        if self._cell_runner is None:
            self._runner = None

    def _execute(self, cell: SupervisedCell) -> Dict[str, Any]:
        """Run one attempt, bounded by the deadline watchdog."""
        runner = self._current_runner()
        if self._policy.deadline_s is None:
            return self._guard(cell, runner)
        box: Dict[str, Any] = {}

        def target() -> None:
            try:
                box["result"] = self._guard(cell, runner)
            # Deferred re-raise: the exception is stored for the
            # supervising thread, which re-raises it right below - the
            # evidence is never swallowed.
            except BaseException as exc:  # parmlint: ok[broad-except]
                box["error"] = exc

        worker = threading.Thread(
            target=target, name=f"cell-{cell.key}", daemon=True
        )
        worker.start()
        worker.join(self._policy.deadline_s)
        if worker.is_alive():
            # The worker cannot be killed; it is abandoned (daemon
            # thread, may keep consuming CPU until its solve returns),
            # the cell is charged a timeout, and run_cell discards the
            # shared default runner so no live attempt races it.
            raise SimTimeout(
                "cell exceeded its deadline watchdog",
                cell=cell.label,
                key=cell.key,
                deadline_s=self._policy.deadline_s,
            )
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _guard(self, cell: SupervisedCell, runner: CellRunner) -> Dict[str, Any]:
        """Taxonomy boundary: classify anything a cell can raise."""
        try:
            return runner(cell)
        except ReproError:
            raise
        except Exception as exc:
            raise ReproError(
                "unclassified error while running cell",
                cell=cell.label,
                key=cell.key,
                error_type=type(exc).__name__,
                error=str(exc),
            ) from exc


class CampaignSupervisor:
    """Runs a campaign's cells as supervised, checkpointed units.

    Args:
        cells: The campaign, in report order.  Cell keys must be unique.
        checkpoint_path: JSON checkpoint location (written after every
            cell; loaded by ``run(resume=True)`` and :meth:`status`).
        policy: Retry/backoff/watchdog limits.
        cell_runner: Override for tests and custom campaigns; defaults
            to :func:`default_cell_runner` (built lazily on first run,
            and rebuilt after a cell timeout so abandoned workers never
            share state with live attempts).  A custom runner is reused
            across attempts even after a timeout - it must tolerate an
            abandoned attempt still executing in the background.  With
            ``workers > 1`` the runner must be picklable (a module-level
            callable), because it is shipped to spawned worker
            processes.
        sleep_fn: Called with each recorded backoff delay before a
            retry.  ``None`` (default) records the schedule without
            sleeping, keeping replays instant and deterministic.  Not
            forwarded to pool workers (``workers > 1`` records backoff
            without sleeping).
        workers: Number of worker processes for cell execution.  ``1``
            (default) runs serially in-process; ``N > 1`` fans pending
            cells across ``N`` spawned processes via
            :func:`repro.perf.parallel.run_cells`.  Results are merged
            in campaign order and checkpointed as each cell completes,
            so the final table and checkpoint are byte-identical to a
            serial run.
    """

    def __init__(
        self,
        cells: Sequence[SupervisedCell],
        checkpoint_path: str,
        policy: Optional[SupervisorPolicy] = None,
        cell_runner: Optional[CellRunner] = None,
        sleep_fn: Optional[Callable[[float], None]] = None,
        workers: int = 1,
    ) -> None:
        cells = tuple(cells)
        if not cells:
            raise ConfigError("campaign has no cells")
        keys = [cell.key for cell in cells]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ConfigError("duplicate campaign cells", keys=tuple(dupes))
        if workers < 1:
            raise ConfigError("workers must be >= 1", workers=workers)
        self._cells = cells
        self._checkpoint_path = checkpoint_path
        self._policy = policy or SupervisorPolicy()
        self._cell_runner = cell_runner
        self._sleep_fn = sleep_fn
        self._workers = int(workers)
        self._executor = CellExecutor(
            self._policy, cell_runner=cell_runner, sleep_fn=sleep_fn
        )

    @property
    def cells(self) -> Tuple[SupervisedCell, ...]:
        return self._cells

    @property
    def checkpoint_path(self) -> str:
        return self._checkpoint_path

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """Summarise checkpoint progress without running anything."""
        summary: Dict[str, Any] = {
            "checkpoint": self._checkpoint_path,
            "exists": os.path.exists(self._checkpoint_path),
            "cells": len(self._cells),
            "completed": 0,
            "failed": 0,
            "pending": len(self._cells),
        }
        if not summary["exists"]:
            return summary
        state = self._load_state()
        for cell in self._cells:
            record = state.get(cell.key)
            if record is None:
                continue
            summary[record["status"]] += 1
            summary["pending"] -= 1
        return summary

    def run(
        self, resume: bool = False, retry_failed: bool = False
    ) -> CampaignOutcome:
        """Execute (or resume) the campaign and return its outcome.

        With ``resume=True``, cells whose content-hash key is recorded
        in the checkpoint are restored, not re-executed - *including*
        cells recorded as failed, which stay failed.  Pass
        ``retry_failed=True`` to re-execute checkpointed failures
        instead (fresh retry budget; the checkpoint record is
        overwritten with the new outcome).  A missing checkpoint file
        simply starts fresh.  Without ``resume``, any existing
        checkpoint is overwritten.

        Raises:
            ConfigError: when a cell spec is invalid (checked up front,
                before any cell runs).
            CheckpointCorrupt: when resuming from a damaged checkpoint.
        """
        for cell in self._cells:
            cell.validate()
        state: Dict[str, Dict[str, Any]] = {}
        if resume and os.path.exists(self._checkpoint_path):
            state = self._load_state()
        restored: Dict[str, CellOutcome] = {}
        pending: List[SupervisedCell] = []
        for cell in self._cells:
            record = state.get(cell.key)
            if record is not None and not (
                retry_failed and record.get("status") == FAILED
            ):
                restored[cell.key] = self._restore(cell, record)
            else:
                pending.append(cell)
        executed: Dict[str, CellOutcome] = {}

        def commit(outcome: CellOutcome) -> None:
            executed[outcome.cell.key] = outcome
            state[outcome.cell.key] = self._record(outcome)
            self._save_state(state)

        if self._workers > 1 and len(pending) > 1:
            # repro.perf builds on this module, so the pool is loaded at
            # run time (importlib) rather than imported statically: the
            # dependency is one-way per call and only exists when the
            # caller asked for workers > 1.
            run_cells = importlib.import_module(
                "repro.perf.parallel"
            ).run_cells
            # self._cell_runner is opaque here by design (any picklable
            # callable); the runners actually shipped through it
            # (run_replica_cell, None -> default_cell_runner built
            # in-worker) are registered in WORKER_ROOTS, and run_cells
            # itself rejects unpicklable runners before the pool starts.
            # parmlint: ok[worker-safety] - opaque runner, see above
            run_cells(
                pending,
                self._policy,
                workers=self._workers,
                cell_runner=self._cell_runner,
                on_outcome=commit,
            )
        else:
            for cell in pending:
                commit(self._run_cell(cell))
        return CampaignOutcome(
            tuple(
                restored[c.key] if c.key in restored else executed[c.key]
                for c in self._cells
            )
        )

    # ------------------------------------------------------------------
    # Cell execution (delegated to the shared CellExecutor unit)
    # ------------------------------------------------------------------

    def _run_cell(self, cell: SupervisedCell) -> CellOutcome:
        return self._executor.run_cell(cell)

    # ------------------------------------------------------------------
    # Checkpoint state
    # ------------------------------------------------------------------

    def _record(self, outcome: CellOutcome) -> Dict[str, Any]:
        return {
            "spec": outcome.cell.spec(),
            "status": outcome.status,
            "result": outcome.result,
            "attempts": [a.to_json() for a in outcome.attempts],
        }

    def _restore(
        self, cell: SupervisedCell, record: Dict[str, Any]
    ) -> CellOutcome:
        return CellOutcome(
            cell=cell,
            status=str(record["status"]),
            result=record["result"],
            attempts=tuple(
                CellAttempt.from_json(a) for a in record["attempts"]
            ),
            from_checkpoint=True,
        )

    def _save_state(self, state: Dict[str, Dict[str, Any]]) -> None:
        save_payload(
            self._checkpoint_path,
            {"cells": state},
            schema=CAMPAIGN_SCHEMA,
            version=CAMPAIGN_VERSION,
        )

    def _load_state(self) -> Dict[str, Dict[str, Any]]:
        from repro.harness.errors import CheckpointCorrupt

        payload = load_payload(
            self._checkpoint_path,
            schema=CAMPAIGN_SCHEMA,
            version=CAMPAIGN_VERSION,
        )
        if not isinstance(payload, dict) or not isinstance(
            payload.get("cells"), dict
        ):
            raise CheckpointCorrupt(
                "checkpoint rejected: campaign payload has no cell map",
                path=self._checkpoint_path,
            )
        return dict(payload["cells"])
