"""Provably independent replica seeding via ``SeedSequence.spawn``.

Before this module, experiment code derived "independent" RNG streams
by adding ad-hoc offsets to a user seed (``7000 + seed`` for fault
campaigns, ``seed + 1000`` for simulators).  Additive offsets give no
independence guarantee - nearby integer seeds of the same bit-generator
family are not statistically independent streams - and two experiments
picking the same offset silently share randomness.

:func:`derive_seeds` replaces the pattern: every stream is a child of a
``numpy.random.SeedSequence`` whose spawn key encodes a *label* (the
experiment/purpose) and a *replica index*, so

* streams with different labels never collide, no matter what offsets
  anyone picks elsewhere;
* replica ``i`` of a label always gets the same seed, independent of
  how many replicas are drawn before or after it (batch-size invariant,
  which the sequential verifier's crash-safe resume relies on);
* the derivation is pure arithmetic on SHA-256 words - no global state,
  no wall clock, reproducible across machines and processes.

Experiments whose outputs are already committed (EXPERIMENTS.md tables,
pinned test fixtures) keep their historical streams byte-identical by
passing ``pinned=`` - the helper then validates and returns the legacy
seeds verbatim, so the pin is explicit and greppable instead of an
unexplained ``+ 1000``.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.harness.errors import ConfigError

#: 32-bit words of the label digest folded into the spawn key.  Four
#: words (128 bits) make cross-label collisions negligible.
_LABEL_WORDS = 4


def _label_key(label: str) -> Tuple[int, ...]:
    """Stable 128-bit spawn-key prefix for a stream label.

    SHA-256 rather than ``hash()``: the derivation must not depend on
    ``PYTHONHASHSEED`` or the interpreter build.
    """
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return tuple(
        int.from_bytes(digest[4 * i : 4 * i + 4], "little")
        for i in range(_LABEL_WORDS)
    )


def derive_seed(root: int, label: str, index: int) -> int:
    """The 64-bit seed of replica ``index`` of stream ``label``.

    Children of a common :class:`numpy.random.SeedSequence` root are
    designed to be statistically independent; encoding ``(label,
    index)`` in the spawn key makes the guarantee hold across labels
    and across replicas without any global spawn counter.

    Args:
        root: Experiment root seed (the user-facing seed knob).
        label: Stream purpose, e.g. ``"verify/ve/replica"``.  Distinct
            labels yield independent streams for the same root.
        index: Replica index within the stream (non-negative).

    Returns:
        A 64-bit integer seed for ``numpy.random.default_rng``.
    """
    if index < 0:
        raise ConfigError("replica index must be non-negative", index=index)
    sequence = np.random.SeedSequence(
        entropy=int(root), spawn_key=_label_key(label) + (int(index),)
    )
    return int(sequence.generate_state(1, np.uint64)[0])


def derive_seeds(
    root: int,
    label: str,
    n: int,
    start: int = 0,
    pinned: Optional[Sequence[int]] = None,
) -> Tuple[int, ...]:
    """``n`` independent replica seeds for stream ``label``.

    Args:
        root: Experiment root seed.
        label: Stream purpose (see :func:`derive_seed`).
        n: Number of seeds to derive.
        start: Index of the first replica - ``derive_seeds(r, l, 3,
            start=5)`` returns replicas 5, 6 and 7, identical to the
            corresponding slice of any larger call.  This batch-size
            invariance is what lets a resumed sequential estimation
            re-derive exactly the seeds it already ran.
        pinned: Legacy seeds of an experiment whose outputs are already
            committed; validated for length and returned verbatim so
            the historical bytes are preserved *and* the pin is visible
            at the call site.

    Raises:
        ConfigError: on a negative count/start or a ``pinned`` sequence
            whose length does not match ``n``.
    """
    if n < 0:
        raise ConfigError("seed count must be non-negative", n=n)
    if pinned is not None:
        pinned = tuple(int(s) for s in pinned)
        if len(pinned) != n:
            raise ConfigError(
                "pinned seed list does not match the requested count",
                n=n,
                pinned=len(pinned),
                label=label,
            )
        return pinned
    return tuple(derive_seed(root, label, start + i) for i in range(n))
