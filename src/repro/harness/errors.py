"""The structured exception taxonomy of the reproduction stack.

Long multi-seed campaigns die ugly deaths when a near-singular MNA
matrix surfaces as a raw ``LinAlgError`` three layers up, or a hung
transient solve blocks a sweep forever.  Every failure mode the stack
can produce is therefore classified under one root:

* :class:`ReproError`       - base class; carries a message plus a
  sorted ``context`` mapping (framework, workload, seed, node, step...)
  so a failure record is machine-readable provenance, not prose;
* :class:`ConfigError`      - invalid experiment inputs (empty seed
  list, non-positive ``n_apps``...), raised before any work starts;
* :class:`SolverError`      - a numerical failure inside a PDN solve:
  singular or ill-conditioned MNA system, NaN/inf currents or node
  voltages, divergence; context names the offending node and step;
* :class:`SolverInputError` - a :class:`SolverError` subclass for bad
  *input data* (non-finite source waveform, supply voltage, tile
  current); no integration-method or timestep change can fix these, so
  retry ladders re-raise them immediately;
* :class:`SimTimeout`       - a supervised cell exceeded its deadline
  watchdog;
* :class:`WorkerCrash`      - a parallel-map task failed: either the
  task callable raised inside its worker, or the worker process died
  outright (OOM kill, segfault -> ``BrokenProcessPool``); context names
  the task index and repr so the failing input is identifiable;
* :class:`CheckpointCorrupt` - a campaign checkpoint failed its schema,
  version, or content-digest validation on load.

The parmlint ``broad-except`` rule (see ``docs/lint.md``) enforces that
``except Exception`` handlers in this repository re-raise one of these
types, so the taxonomy stays load-bearing rather than decorative.
"""

from __future__ import annotations

import math
from typing import Any, Dict


def jsonable_context(context: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce a context mapping into JSON-serialisable values.

    Ints, finite floats, bools, strings and ``None`` pass through;
    everything else (enum members, tuples, numpy scalars...) is
    ``repr()``-ed so a failure record can always be checkpointed.
    Non-finite floats become their repr (``'nan'``, ``'inf'``,
    ``'-inf'``): checkpoints are digested with ``allow_nan=False``, and
    the solver guards put NaN/inf into context by construction - the
    one failure mode a failure record must survive.
    """
    out: Dict[str, Any] = {}
    for key in sorted(context):
        value = context[key]
        if isinstance(value, bool) or value is None:
            out[key] = value
        elif isinstance(value, float) and not math.isfinite(value):
            out[key] = repr(value)
        elif isinstance(value, (int, float, str)):
            out[key] = value
        else:
            out[key] = repr(value)
    return out


class ReproError(Exception):
    """Base class of every classified failure in the stack.

    Args:
        message: Human-readable description (no context baked in).
        **context: Structured provenance - framework, workload, seed,
            node, step, path... - kept sorted by key so renderings and
            serialisations are deterministic.
    """

    def __init__(self, message: str, **context: Any) -> None:
        super().__init__(message)
        self.message = message
        self.context: Dict[str, Any] = {
            key: context[key] for key in sorted(context)
        }

    def __str__(self) -> str:
        if not self.context:
            return self.message
        detail = ", ".join(
            f"{key}={value!r}" for key, value in self.context.items()
        )
        return f"{self.message} [{detail}]"

    def to_json(self) -> Dict[str, Any]:
        """Serialisable failure record (used in checkpoints/reports)."""
        return {
            "type": type(self).__name__,
            "message": self.message,
            "context": jsonable_context(self.context),
        }


class ConfigError(ReproError):
    """Invalid experiment configuration, detected before any work runs."""


class SolverError(ReproError):
    """A numerical failure inside a PDN solve.

    Context conventionally carries ``node`` (offending circuit node, or
    ``branch[k]`` for an MNA branch unknown), ``step`` (timestep index),
    ``method`` and ``dt_s`` so the failure is actionable without a
    debugger.
    """


class SolverInputError(SolverError):
    """A solver failure caused by bad input data, not numerics.

    A non-finite source waveform, supply voltage or tile current cannot
    be fixed by switching integration method or halving the timestep,
    so :func:`repro.pdn.transient.guarded_transient` re-raises this
    type immediately instead of walking its escalation ladder.
    """


class SimTimeout(ReproError):
    """A supervised cell exceeded its wall-clock deadline watchdog."""


class WorkerCrash(ReproError):
    """A parallel-map task failed in (or took down) its worker process.

    Raised by :func:`repro.perf.parallel.map_tasks` for both failure
    modes: the task callable raising any non-taxonomy exception, and
    the worker process dying before returning a result (an OOM kill or
    hard crash surfaces as ``BrokenProcessPool``).  Context carries
    ``task_index`` and ``task`` (repr) so the offending input can be
    replayed, plus ``error_type``/``error`` with the underlying cause.
    Taxonomy errors (:class:`ReproError` subclasses) raised by the task
    itself propagate unchanged - they already carry provenance.
    """


class CheckpointCorrupt(ReproError):
    """A checkpoint payload failed schema/version/digest validation."""
