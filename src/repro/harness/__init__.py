"""Supervised experiment campaigns: error taxonomy and crash-safe runs.

* :mod:`repro.harness.errors`     - the structured exception taxonomy
  (:class:`ReproError` and its subclasses) used across the stack in
  place of ad-hoc ``ValueError``/``LinAlgError`` propagation;
* :mod:`repro.harness.supervisor` - :class:`CampaignSupervisor`, which
  runs experiment cells as resumable units with content-hashed keys,
  versioned JSON checkpoints, per-cell deadline watchdogs and bounded
  seeded-backoff retries;
* :mod:`repro.harness.cli`        - the ``python -m repro campaign``
  entry point (run / resume / status).

Only the error taxonomy is re-exported here: :mod:`repro.runtime` and
:mod:`repro.pdn` import it, so this package ``__init__`` must stay free
of imports from those layers (the supervisor imports the experiment
runner; import it explicitly from :mod:`repro.harness.supervisor`).
"""

from repro.harness.errors import (
    CheckpointCorrupt,
    ConfigError,
    ReproError,
    SimTimeout,
    SolverError,
    SolverInputError,
)

__all__ = [
    "CheckpointCorrupt",
    "ConfigError",
    "ReproError",
    "SimTimeout",
    "SolverError",
    "SolverInputError",
]
