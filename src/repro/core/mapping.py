"""PSN-aware mapping heuristic (Algorithm 2, end to end).

Given a (Vdd, DoP) pair that satisfies the deadline, the heuristic:

1. rejects the placement when the application's estimated power at that
   operating point exceeds the available dark-silicon headroom
   (lines 1-2);
2. clusters the tasks by activity bin in decreasing communication order
   (lines 3-9, :mod:`repro.core.clustering`);
3. fails when fewer free domains exist than clusters (lines 10-11);
4. places the clusters on domains minimising inter-domain communication
   distance and arranges same-bin tasks adjacently inside mixed domains
   (line 13, :mod:`repro.core.placement`).
"""

from __future__ import annotations

from typing import Optional

from repro.apps.profiles import ApplicationProfile
from repro.core.base import MappingDecision
from repro.core.clustering import cluster_tasks
from repro.core.placement import place_clusters
from repro.runtime.state import ChipState


def psn_aware_mapping(
    profile: ApplicationProfile,
    vdd: float,
    dop: int,
    state: ChipState,
) -> Optional[MappingDecision]:
    """Algorithm 2: find a PSN-minimising placement or report failure.

    Args:
        profile: The application's offline profile.
        vdd: Candidate supply voltage.
        dop: Candidate degree of parallelism.
        state: Current chip occupancy.

    Returns:
        The mapping decision, or ``None`` when the DsPB or domain
        availability constraints cannot be met.
    """
    power = profile.power_w(vdd, dop)
    if power > state.available_power_w():
        return None  # lines 1-2
    graph = profile.graph(dop)
    clusters = cluster_tasks(graph)  # lines 3-9
    free = state.free_domains()
    if len(free) < len(clusters):
        return None  # lines 10-11
    task_to_tile = place_clusters(graph, clusters, free, state.chip.domains)
    if task_to_tile is None:
        return None
    return MappingDecision(
        vdd=vdd, dop=dop, task_to_tile=task_to_tile, power_w=power
    )
