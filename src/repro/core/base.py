"""Common interface of the compared resource managers."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.apps.profiles import ApplicationProfile
from repro.runtime.state import ChipState


@dataclass(frozen=True)
class MappingDecision:
    """The manager's output for one application (Fig. 4).

    Attributes:
        vdd: Supply voltage for all of the application's tiles.
        dop: Chosen degree of parallelism (thread count).
        task_to_tile: Placement of every task.
        power_w: Estimated power consumption charged against the DsPB.
    """

    vdd: float
    dop: int
    task_to_tile: Dict[int, int]
    power_w: float

    def __post_init__(self) -> None:
        if len(self.task_to_tile) != self.dop:
            raise ValueError(
                f"decision maps {len(self.task_to_tile)} tasks but DoP is {self.dop}"
            )
        tiles = list(self.task_to_tile.values())
        if len(set(tiles)) != len(tiles):
            raise ValueError("two tasks mapped to one tile")

    @property
    def tiles(self) -> Tuple[int, ...]:
        return tuple(sorted(self.task_to_tile.values()))


class ResourceManager(abc.ABC):
    """A runtime policy that maps arriving applications onto the CMP."""

    #: Evaluation name used in experiment tables (e.g. ``"PARM"``).
    name: str = "base"

    @abc.abstractmethod
    def try_map(
        self,
        profile: ApplicationProfile,
        deadline_s: float,
        state: ChipState,
    ) -> Optional[MappingDecision]:
        """Attempt to map one application.

        Args:
            profile: The application's offline profile.
            deadline_s: Remaining time until the application's deadline
                (relative, seconds).
            state: Current chip occupancy (not modified; the runtime
                applies the decision).

        Returns:
            A :class:`MappingDecision`, or ``None`` when no feasible
            mapping exists right now (the runtime retries when resources
            free up, and drops the application once its deadline can no
            longer be met).
        """

    def try_remap(
        self,
        profile: ApplicationProfile,
        deadline_s: float,
        state: ChipState,
    ) -> Optional[MappingDecision]:
        """Re-map an application evicted by a permanent fault.

        Called by the runtime's recovery path after a tile or router
        failure (or an unroutable NoC flow) forced the application off
        its tiles: the chip state already excludes the failed hardware,
        so a fresh mapping decision automatically routes around it.  The
        default delegates to :meth:`try_map` - the manager re-runs its
        full operating-point search against the degraded chip; managers
        may override to bias recovery placements (e.g. away from fault
        clusters).

        Returns:
            A fresh :class:`MappingDecision`, or ``None`` when the
            degraded chip cannot host the application right now (the
            runtime retries with exponential backoff, then fails the
            application cleanly).
        """
        return self.try_map(profile, deadline_s, state)
