"""Task clustering (Algorithm 2, lines 3-9).

The heuristic walks the APG edges in decreasing order of communication
volume and appends each not-yet-listed endpoint task to the list of its
switching-activity bin (High or Low).  Each list therefore ends up
ordered by communication importance.  Lists are then chopped into
clusters of four tasks - the size of a power-supply domain - so that

1. all but (at most) one cluster contain tasks of a single activity bin,
   minimising High-Low interference inside a domain (Fig. 3b), and
2. tasks with the highest communication volumes land in the same domain,
   minimising NoC traffic.

Tasks untouched by any edge (isolated vertices) are appended to their
bin's list in id order.  Because the DoP is a multiple of four, the two
lists' remainders (< 4 each) always total zero or exactly four tasks,
which form the single mixed cluster the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.apps.graph import ApplicationGraph
from repro.pdn.waveforms import ActivityBin


@dataclass(frozen=True)
class TaskCluster:
    """Four tasks destined for one power-supply domain.

    Attributes:
        tasks: Task ids in list order.
        mixed: Whether the cluster contains both activity bins.
    """

    tasks: Tuple[int, ...]
    mixed: bool

    def __post_init__(self) -> None:
        if not 1 <= len(self.tasks) <= 4:
            raise ValueError("clusters hold 1 to 4 tasks")


def cluster_tasks(
    graph: ApplicationGraph, activity_aware: bool = True
) -> List[TaskCluster]:
    """Partition an APG's tasks into domain-sized clusters.

    Args:
        graph: Application graph whose task count is a multiple of 4.
        activity_aware: When false, tasks are not separated by activity
            bin (only communication order matters) - the ablation of the
            paper's key clustering idea.

    Returns:
        Clusters in creation order (High clusters, Low clusters, then
        the mixed remainder cluster if any).
    """
    if graph.task_count % 4:
        raise ValueError(
            f"task count {graph.task_count} is not a multiple of 4"
        )

    listed = set()
    high: List[int] = []
    low: List[int] = []

    def push(task_id: int) -> None:
        if task_id in listed:
            return
        listed.add(task_id)
        if activity_aware and graph.task(task_id).activity_bin is ActivityBin.HIGH:
            high.append(task_id)
        else:
            low.append(task_id)

    for src, dst, _volume in graph.edges_by_volume():
        push(src)
        push(dst)
    for task in graph.tasks():  # isolated vertices, id order
        push(task.task_id)

    def make(tasks: Tuple[int, ...]) -> TaskCluster:
        bins = {graph.task(t).activity_bin for t in tasks}
        return TaskCluster(tasks, mixed=len(bins) > 1)

    clusters: List[TaskCluster] = []
    for tasks in (high, low):
        while len(tasks) >= 4:
            clusters.append(make(tuple(tasks[:4])))
            del tasks[:4]
    remainder = high + low
    if remainder:
        clusters.append(make(tuple(remainder)))
    return clusters
