"""PARM's joint Vdd and DoP selection (Algorithm 1).

To keep peak PSN low the algorithm starts from the *lowest* permissible
Vdd (peak PSN is proportional to Vdd, Fig. 3a) and the *highest* DoP
(more threads recover the performance lost to the low clock):

* for each Vdd in increasing order, DoP values are tried in decreasing
  order;
* a (Vdd, DoP) whose profiled WCET misses the deadline prunes all lower
  DoPs at this Vdd (they are slower still) and moves to the next Vdd
  (line 13);
* a (Vdd, DoP) that meets the deadline is handed to the PSN-aware
  mapping heuristic (line 7); mapping failure tries the next lower DoP
  (line 12), which needs fewer domains and less power;
* when every combination fails, ``None`` is returned - the runtime keeps
  the application queued (the paper's "stall till an app exit event")
  and drops it once its deadline can no longer be met, avoiding
  service-queue stagnation.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.profiles import ApplicationProfile
from repro.core.base import MappingDecision, ResourceManager
from repro.core.mapping import psn_aware_mapping
from repro.runtime.state import ChipState


class ParmManager(ResourceManager):
    """The paper's PSN-aware runtime resource manager."""

    name = "PARM"

    def try_map(
        self,
        profile: ApplicationProfile,
        deadline_s: float,
        state: ChipState,
    ) -> Optional[MappingDecision]:
        ladder = state.chip.vdd_ladder
        for vdd in ladder:  # increasing Vdd (line 3)
            for dop in sorted(profile.supported_dops, reverse=True):  # line 4
                wcet = profile.wcet_s(vdd, dop)  # line 5
                if wcet >= deadline_s:
                    # Lower DoPs are slower still: next Vdd (line 13).
                    break
                decision = psn_aware_mapping(profile, vdd, dop, state)  # line 7
                if decision is not None:
                    return decision
                # Mapping failed: a lower DoP needs fewer domains and
                # less power (line 12).
        return None
