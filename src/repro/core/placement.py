"""Cluster-to-domain and task-to-tile placement (Algorithm 2 line 13).

The paper omits the details of ``task-cluster-to-domain-mapping()`` "due
to lack of space" but states its goals: place the clusters on free
domains so that the hop distance between inter-domain communicating
tasks is minimised, and inside a mixed domain put tasks of the same
activity level on adjacent tiles (Fig. 5) to reduce High-Low
interference.

This implementation uses a greedy heuristic with linear complexity in
the number of tiles, matching the paper's O(T) analysis (Section 4.3):

1. clusters are considered in decreasing order of their total external
   communication volume;
2. the first cluster takes the free domain whose mean distance to all
   other free domains is smallest (the "centre" of the free region);
3. each following cluster takes the free domain minimising the sum over
   already-placed clusters of (domain distance x inter-cluster volume);
4. inside a domain, tasks are grouped by activity bin and each bin group
   occupies horizontally adjacent tiles (positions (0,1) and (2,3) of
   the 2x2 block), as in Fig. 5.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.graph import ApplicationGraph
from repro.chip.domains import DomainMap
from repro.core.clustering import TaskCluster
from repro.pdn.waveforms import ActivityBin


def place_clusters(
    graph: ApplicationGraph,
    clusters: Sequence[TaskCluster],
    free_domains: Sequence[int],
    domains: DomainMap,
) -> Optional[Dict[int, int]]:
    """Place clusters onto free domains.

    Returns:
        Task-to-tile mapping, or ``None`` when there are fewer free
        domains than clusters.
    """
    if len(free_domains) < len(clusters):
        return None

    cluster_of = {
        t: i for i, c in enumerate(clusters) for t in c.tasks
    }
    # Inter-cluster communication volumes.
    volume = [[0.0] * len(clusters) for _ in clusters]
    external = [0.0] * len(clusters)
    for src, dst, vol in graph.edges():
        a, b = cluster_of[src], cluster_of[dst]
        if a != b:
            volume[a][b] += vol
            volume[b][a] += vol
            external[a] += vol
            external[b] += vol

    order = sorted(
        range(len(clusters)), key=lambda i: (-external[i], i)
    )
    available = list(free_domains)
    chosen: Dict[int, int] = {}  # cluster index -> domain id

    for rank, ci in enumerate(order):
        if rank == 0:
            # Centre of the free region: minimise mean distance to the
            # other free domains so later clusters have close options.
            best = min(
                available,
                key=lambda d: (
                    sum(domains.domain_distance(d, o) for o in available),
                    d,
                ),
            )
        else:
            def cost(d: int) -> float:
                return sum(
                    domains.domain_distance(d, chosen[cj]) * volume[ci][cj]
                    for cj in chosen
                ) + 1e-3 * sum(
                    domains.domain_distance(d, chosen[cj]) for cj in chosen
                )

            best = min(available, key=lambda d: (cost(d), d))
        chosen[ci] = best
        available.remove(best)

    mapping: Dict[int, int] = {}
    for ci, domain in chosen.items():
        mapping.update(
            _place_within_domain(graph, clusters[ci], domains.tiles_of(domain))
        )
    return mapping


def _place_within_domain(
    graph: ApplicationGraph,
    cluster: TaskCluster,
    tiles: List[int],
) -> Dict[int, int]:
    """Assign a cluster's tasks to the four tiles of its domain.

    Same-bin tasks go on horizontally adjacent tiles: positions 0,1 of
    the 2x2 block are one pair, positions 2,3 the other (Fig. 5).
    """
    highs = [
        t
        for t in cluster.tasks
        if graph.task(t).activity_bin is ActivityBin.HIGH
    ]
    lows = [t for t in cluster.tasks if t not in highs]
    ordered = highs + lows
    return {task: tiles[pos] for pos, task in enumerate(ordered)}
