"""Orchestrator-style reactive baseline (after Hu et al. [19]).

The paper's related work includes thread mapping *and migration* schemes
that minimise voltage fluctuations reactively: map first, watch the
sensors, move the offending thread when noise appears.  This module
provides the mapping half - a PSN-oblivious first-fit placement at the
nominal voltage and a fixed thread count - and pairs with the runtime's
:class:`~repro.runtime.migration.ReactiveMigrationPolicy`, which
migrates the noisiest thread away when its tile's sensor crosses the
voltage-emergency margin.

The contrast with PARM is the paper's argument in Section 2: reactive
("corrective") schemes pay detection latency and migration overhead for
every hotspot, while PARM prevents the hotspots at mapping time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.apps.profiles import ApplicationProfile
from repro.core.base import MappingDecision, ResourceManager
from repro.runtime.state import ChipState


@dataclass
class OrchestratorManager(ResourceManager):
    """PSN-oblivious first-fit mapper (the reactive scheme's front end).

    Attributes:
        default_dop: Fixed thread count (no DoP adaptation, like HM).
    """

    default_dop: int = 16
    name = "ORCH"

    def __post_init__(self) -> None:
        if self.default_dop < 4 or self.default_dop % 4:
            raise ValueError("default_dop must be a positive multiple of 4")

    def try_map(
        self,
        profile: ApplicationProfile,
        deadline_s: float,
        state: ChipState,
    ) -> Optional[MappingDecision]:
        vdd = state.chip.vdd_ladder.highest
        dop = self.default_dop
        if dop not in profile.supported_dops:
            raise ValueError(
                f"{profile.name} does not support DoP {dop}"
            )
        if profile.wcet_s(vdd, dop) >= deadline_s:
            return None
        power = profile.power_w(vdd, dop)
        if power > state.available_power_w():
            return None
        free = [
            t
            for t in state.free_tiles()
            if state.domain_vdd(state.chip.domains.domain_of(t))
            in (None, vdd)
        ]
        if len(free) < dop:
            return None
        graph = profile.graph(dop)
        # First fit: tasks onto the lowest-numbered free tiles, in id
        # order - deliberately oblivious to activity bins and traffic.
        task_to_tile: Dict[int, int] = {
            task.task_id: free[i] for i, task in enumerate(graph.tasks())
        }
        return MappingDecision(
            vdd=vdd, dop=dop, task_to_tile=task_to_tile, power_w=power
        )
