"""Harmonic-mapping baseline (HM), after Dahir et al. [21].

The state-of-the-art the paper compares against: a PSN-aware mapping
scheme that places tasks with high switching activity at long Manhattan
distances from each other so their supply noise does not compound.  Its
defining traits, which the paper's evaluation exploits:

* **no Vdd adaptation** - applications run at the nominal (highest)
  supply voltage.  Per Fig. 3a this maximises peak PSN, and the high
  per-app power means fewer applications fit under the dark-silicon
  budget ("HM fails ... because of its increased power consumption (due
  to high Vdd)", Section 5.2);
* **no DoP adaptation** - adaptable parallelism is one of PARM's
  contributions; the baseline runs every application at its default
  thread count;
* **scatter placement** - high-activity tasks are spread across the chip
  in non-contiguous regions at maximal pairwise distances, stretching
  communication paths and letting applications share power domains.

Placement: tasks are considered in decreasing activity factor.  Each
High-bin task takes the free tile maximising its minimum distance to the
already-placed High tasks (harmonic spreading); each Low-bin task takes
the free tile minimising communication distance to its placed APG
neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.graph import ApplicationGraph
from repro.apps.profiles import ApplicationProfile
from repro.core.base import MappingDecision, ResourceManager
from repro.pdn.waveforms import ActivityBin
from repro.runtime.state import ChipState


@dataclass
class HarmonicManager(ResourceManager):
    """The HM prior-work baseline.

    Attributes:
        default_dop: Thread count every application runs with (HM does
            not adapt parallelism); must be supported by the profiles.
    """

    default_dop: int = 16
    name = "HM"

    def __post_init__(self) -> None:
        if self.default_dop < 4 or self.default_dop % 4:
            raise ValueError("default_dop must be a positive multiple of 4")

    def try_map(
        self,
        profile: ApplicationProfile,
        deadline_s: float,
        state: ChipState,
    ) -> Optional[MappingDecision]:
        vdd = state.chip.vdd_ladder.highest
        dop = self.default_dop
        if dop not in profile.supported_dops:
            raise ValueError(
                f"{profile.name} does not support DoP {dop}; "
                f"supported: {profile.supported_dops}"
            )
        if profile.wcet_s(vdd, dop) >= deadline_s:
            return None
        power = profile.power_w(vdd, dop)
        if power > state.available_power_w():
            return None
        task_to_tile = self._scatter(profile.graph(dop), state, vdd)
        if task_to_tile is None:
            return None
        return MappingDecision(
            vdd=vdd, dop=dop, task_to_tile=task_to_tile, power_w=power
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _scatter(
        graph: ApplicationGraph,
        state: ChipState,
        vdd: float,
    ) -> Optional[Dict[int, int]]:
        """Harmonic placement over individual free tiles."""
        mesh = state.chip.mesh
        domains = state.chip.domains
        free = [
            t
            for t in state.free_tiles()
            # HM may share domains between applications, but the hardware
            # still requires one Vdd per domain.
            if state.domain_vdd(domains.domain_of(t)) in (None, vdd)
        ]
        if len(free) < graph.task_count:
            return None

        order = sorted(
            graph.tasks(),
            key=lambda t: (-t.activity_factor, t.task_id),
        )
        placed: Dict[int, int] = {}
        placed_high: List[int] = []
        for task in order:
            if task.activity_bin is ActivityBin.HIGH:
                if placed_high:
                    tile = max(
                        free,
                        key=lambda f: (
                            min(mesh.manhattan(f, p) for p in placed_high),
                            -f,
                        ),
                    )
                else:
                    tile = free[0]
                placed_high.append(tile)
            else:
                neighbours = [
                    placed[n]
                    for n in graph.predecessors(task.task_id)
                    + graph.successors(task.task_id)
                    if n in placed
                ]
                if neighbours:
                    tile = min(
                        free,
                        key=lambda f: (
                            sum(mesh.manhattan(f, p) for p in neighbours),
                            f,
                        ),
                    )
                else:
                    tile = free[0]
            placed[task.task_id] = tile
            free.remove(tile)
        return placed
