"""The paper's contribution: PSN-aware resource management (PARM) + HM.

* :mod:`repro.core.selection`  - Algorithm 1: joint Vdd and DoP selection;
* :mod:`repro.core.clustering` - Algorithm 2 lines 3-9: activity- and
  communication-aware task clustering into power-domain-sized groups;
* :mod:`repro.core.placement`  - the cluster-to-domain and
  task-to-tile placement step (Algorithm 2 line 13 / Fig. 5);
* :mod:`repro.core.mapping`    - Algorithm 2 end to end;
* :mod:`repro.core.hm`         - the harmonic-mapping baseline ([21]):
  high-activity tasks scattered at maximal distances, no Vdd/DoP
  adaptation;
* :mod:`repro.core.orchestrator` - the reactive baseline ([19]):
  PSN-oblivious first-fit mapping, fixed nominal Vdd, paired with the
  runtime's sensor-triggered thread migration.
"""

from repro.core.base import MappingDecision, ResourceManager
from repro.core.clustering import TaskCluster, cluster_tasks
from repro.core.mapping import psn_aware_mapping
from repro.core.placement import place_clusters
from repro.core.selection import ParmManager
from repro.core.hm import HarmonicManager
from repro.core.orchestrator import OrchestratorManager

__all__ = [
    "MappingDecision",
    "ResourceManager",
    "TaskCluster",
    "cluster_tasks",
    "psn_aware_mapping",
    "place_clusters",
    "ParmManager",
    "HarmonicManager",
    "OrchestratorManager",
]
