"""PARM reproduction: PSN-aware resource management for NoC-based CMPs.

A full Python reimplementation of Raparti & Pasricha, "PARM: Power Supply
Noise Aware Resource Management for NoC based Multicore Systems in the
Dark Silicon Era" (DAC 2018), together with every substrate its evaluation
depends on:

* :mod:`repro.chip`   - CMP platform (mesh, power domains, DVFS, power model)
* :mod:`repro.pdn`    - power delivery network, MNA transient solver, PSN models
* :mod:`repro.apps`   - application graphs, offline profiles, benchmark suite
* :mod:`repro.noc`    - mesh NoC: routing algorithms, cycle-level + analytical models
* :mod:`repro.sched`  - deadline assignment and EDF scheduling
* :mod:`repro.core`   - the PARM framework (Algorithms 1 and 2) and the HM baseline
* :mod:`repro.runtime`- discrete-event runtime simulator with fault handling
* :mod:`repro.exp`    - experiment harness reproducing every paper figure
"""

__version__ = "1.0.0"
