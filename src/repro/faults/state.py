"""Active-fault view the runtime consults while simulating.

:class:`FaultState` folds applied :class:`~repro.faults.events.FaultEvent`
objects into the queryable sets the degradation paths consume: dead
links and routers for the NoC model, failed tiles for the mappers, a
per-tile PSN floor for VRM droop episodes.  Sensor faults are pushed
straight into the :class:`~repro.pdn.sensors.SensorNetwork`, which owns
per-tile sensor fault state and staleness.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

import numpy as np

from repro.chip.cmp import ChipDescription
from repro.faults.events import SENSOR_FAULT_KINDS, FaultEvent, FaultKind
from repro.noc.topology import Direction
from repro.pdn.sensors import SensorFault, SensorNetwork

#: FaultKind -> SensorFault.kind translation.
_SENSOR_KIND = {
    FaultKind.SENSOR_STUCK: "stuck",
    FaultKind.SENSOR_DEAD: "dead",
    FaultKind.SENSOR_DRIFT: "drift",
}


class FaultState:
    """Mutable view of which components are currently broken."""

    def __init__(self, chip: ChipDescription):
        self._chip = chip
        self.dead_links: Set[Tuple[int, Direction]] = set()
        self.dead_routers: Set[int] = set()
        self.failed_tiles: Set[int] = set()
        #: Per-tile PSN-floor raise from active VRM droop episodes.
        self.droop_pct = np.zeros(chip.tile_count)
        self.faults_applied = 0

    @property
    def any_noc_faults(self) -> bool:
        return bool(self.dead_links or self.dead_routers)

    def apply(
        self, event: FaultEvent, sensors: Optional[SensorNetwork] = None
    ) -> None:
        """Fold one fault occurrence into the active view."""
        kind = event.kind
        if kind in SENSOR_FAULT_KINDS:
            if sensors is not None:
                sensors.set_fault(
                    int(event.target),
                    SensorFault(
                        kind=_SENSOR_KIND[kind],
                        value_pct=event.magnitude,
                        since_s=event.time_s,
                    ),
                )
        elif kind is FaultKind.LINK_FAIL:
            self.dead_links.add(event.target)
        elif kind is FaultKind.ROUTER_FAIL:
            tile = int(event.target)
            self.dead_routers.add(tile)
            self.failed_tiles.add(tile)
        elif kind is FaultKind.TILE_FAIL:
            self.failed_tiles.add(int(event.target))
        elif kind is FaultKind.VRM_DROOP:
            for tile in self._chip.domains.tiles_of(int(event.target)):
                self.droop_pct[tile] += event.magnitude
        self.faults_applied += 1

    def expire(
        self, event: FaultEvent, sensors: Optional[SensorNetwork] = None
    ) -> None:
        """Undo a transient fault at its end time (no-op if permanent)."""
        if event.permanent:
            return
        kind = event.kind
        if kind in SENSOR_FAULT_KINDS:
            if sensors is not None:
                # Clear only "our" fault: a later fault on the same tile
                # must survive this expiry (last fault wins).
                sensors.clear_fault(int(event.target), since_s=event.time_s)
        elif kind is FaultKind.LINK_FAIL:
            self.dead_links.discard(event.target)
        elif kind is FaultKind.VRM_DROOP:
            for tile in self._chip.domains.tiles_of(int(event.target)):
                self.droop_pct[tile] = max(
                    0.0, self.droop_pct[tile] - event.magnitude
                )
