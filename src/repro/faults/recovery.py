"""Recovery policy: bounded-retry re-mapping with exponential backoff.

When a permanent fault evicts a running application (its tile or router
died) or makes its NoC flows unroutable, the runtime rolls the
application back to its last checkpoint and asks the resource manager to
re-map it.  Re-mapping may fail while the chip is busy, so attempts are
retried with exponential backoff; once the retry budget is exhausted the
application is *failed* cleanly (a terminal
:class:`~repro.runtime.metrics.AppRecord` outcome) instead of raising or
livelocking the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RecoveryPolicy:
    """Limits and costs of fault-triggered application recovery.

    Attributes:
        max_remap_retries: Retry attempts after one recovery's immediate
            re-map attempt fails (total attempts per recovery = 1 +
            this; each new eviction gets a fresh retry budget).
        max_total_remaps: Lifetime budget of *successful* re-mappings
            per application.  Under a pathological fault pattern an
            application can be re-placed into an unroutable spot over
            and over; once this budget is spent the application is
            failed cleanly rather than allowed to churn forever.
        backoff_initial_s: Delay before the first retry.
        backoff_factor: Multiplier between consecutive retry delays.
        per_task_restart_cost_s: Wall-clock penalty per task of the
            re-mapped application (checkpoint restore and state transfer
            to the new tiles over the NoC) - the same physical cost as a
            migration move.
    """

    max_remap_retries: int = 4
    max_total_remaps: int = 20
    backoff_initial_s: float = 0.05
    backoff_factor: float = 2.0
    per_task_restart_cost_s: float = 100e-6

    def __post_init__(self) -> None:
        if self.max_remap_retries < 0:
            raise ValueError("max_remap_retries must be non-negative")
        if self.max_total_remaps < 1:
            raise ValueError("max_total_remaps must be at least 1")
        if self.backoff_initial_s <= 0:
            raise ValueError("backoff_initial_s must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.per_task_restart_cost_s < 0:
            raise ValueError("per_task_restart_cost_s must be non-negative")

    def backoff_s(self, retry_index: int) -> float:
        """Delay before retry ``retry_index`` (0-based)."""
        if retry_index < 0:
            raise ValueError("retry_index must be non-negative")
        return self.backoff_initial_s * self.backoff_factor ** retry_index

    def jittered_backoff_s(
        self,
        retry_index: int,
        rng: np.random.Generator,
        jitter_fraction: float = 0.1,
    ) -> float:
        """Backoff delay with seeded multiplicative jitter.

        The base :meth:`backoff_s` delay is scaled by a factor drawn
        uniformly from ``[1 - jitter_fraction, 1 + jitter_fraction]``,
        desynchronising retry storms across concurrently failing units.
        The jitter comes from the caller's explicit ``rng`` - never the
        wall clock or process-global RNG state - so a replay with the
        same seed reproduces the same schedule bit for bit (the campaign
        supervisor seeds the generator from the cell's content hash).
        """
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        scale = 1.0 + jitter_fraction * (2.0 * float(rng.random()) - 1.0)
        return self.backoff_s(retry_index) * scale
