"""Fault taxonomy for the fault-injection subsystem.

PARM already treats *noise-induced* faults (voltage emergencies) as
first-class events; this module adds the component-failure taxonomy the
related NoC verification literature (Roberts et al., Waddoups et al.)
centres on: sensors, links, routers, voltage regulators and whole tiles
can misbehave, transiently or permanently.

A :class:`FaultEvent` is a *scheduled* occurrence: the campaign model
(:mod:`repro.faults.campaign`) produces them either from an explicit
schedule or from seeded Poisson processes, and the runtime applies and
expires them through :class:`repro.faults.state.FaultState`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.noc.topology import Direction


class FaultKind(enum.Enum):
    """What breaks.

    Sensor faults model the on-die PSN sensor macros:

    * ``SENSOR_STUCK``: the sensor latches one code forever (stuck-at);
      detected by the sensor's self-test, so consumers know to distrust
      the reading.
    * ``SENSOR_DEAD``: the sensor stops responding; the last latched
      reading goes stale.  Detected (a missing heartbeat is visible).
    * ``SENSOR_DRIFT``: the reading drifts away from the true value at a
      constant rate - a *silent* fault: consumers cannot tell.

    NoC faults:

    * ``LINK_FAIL``: one unidirectional mesh link stops carrying flits.
    * ``ROUTER_FAIL``: a router dies; no traffic can traverse the tile
      and the tile can no longer host a task (its NoC access is gone).
      Permanent.

    Power-delivery faults:

    * ``VRM_DROOP``: a voltage-regulator episode raises the PSN floor of
      a whole power domain for its duration.

    Compute faults:

    * ``TILE_FAIL``: a tile (core) fails permanently; the occupying task
      loses state back to its last checkpoint and must be re-mapped.
    """

    SENSOR_STUCK = "sensor_stuck"
    SENSOR_DEAD = "sensor_dead"
    SENSOR_DRIFT = "sensor_drift"
    LINK_FAIL = "link_fail"
    ROUTER_FAIL = "router_fail"
    VRM_DROOP = "vrm_droop"
    TILE_FAIL = "tile_fail"


#: Kinds that target the PSN sensor of one tile.
SENSOR_FAULT_KINDS = frozenset(
    {FaultKind.SENSOR_STUCK, FaultKind.SENSOR_DEAD, FaultKind.SENSOR_DRIFT}
)

#: Kinds that are always permanent (no recovery of the component).
PERMANENT_FAULT_KINDS = frozenset({FaultKind.ROUTER_FAIL, FaultKind.TILE_FAIL})

#: Target type: a tile id, a domain id, or a ``(tile, Direction)`` link.
FaultTarget = Union[int, Tuple[int, Direction]]


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault occurrence.

    Attributes:
        kind: What breaks.
        time_s: Injection time (seconds, simulation clock).
        target: Tile id (sensor/router/tile kinds), domain id
            (``VRM_DROOP``) or ``(tile, Direction)`` (``LINK_FAIL``).
        duration_s: Transient fault duration; ``None`` means permanent.
            ``ROUTER_FAIL`` and ``TILE_FAIL`` must be permanent;
            ``VRM_DROOP`` must be transient.
        magnitude: Kind-specific payload: the stuck reading (percent of
            Vdd) for ``SENSOR_STUCK``, the drift rate (percent of Vdd
            per second) for ``SENSOR_DRIFT``, the PSN-floor raise
            (percent of Vdd) for ``VRM_DROOP``; unused otherwise.
    """

    kind: FaultKind
    time_s: float
    target: FaultTarget
    duration_s: Optional[float] = None
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.time_s) or self.time_s < 0:
            raise ValueError("time_s must be finite and non-negative")
        if self.duration_s is not None and (
            not math.isfinite(self.duration_s) or self.duration_s <= 0
        ):
            raise ValueError("duration_s must be positive (or None)")
        if not math.isfinite(self.magnitude):
            raise ValueError("magnitude must be finite")
        if self.kind in PERMANENT_FAULT_KINDS and self.duration_s is not None:
            raise ValueError(f"{self.kind.value} faults are permanent")
        if self.kind is FaultKind.VRM_DROOP:
            if self.duration_s is None:
                raise ValueError("VRM droop episodes must have a duration")
            if self.magnitude <= 0:
                raise ValueError("VRM droop magnitude must be positive")
        if self.kind is FaultKind.LINK_FAIL:
            if (
                not isinstance(self.target, tuple)
                or len(self.target) != 2
                or not isinstance(self.target[1], Direction)
            ):
                raise ValueError(
                    "LINK_FAIL target must be a (tile, Direction) pair"
                )
        elif not isinstance(self.target, (int,)) or isinstance(
            self.target, bool
        ):
            raise ValueError(f"{self.kind.value} target must be a tile/domain id")

    @property
    def permanent(self) -> bool:
        return self.duration_s is None

    @property
    def end_s(self) -> float:
        """When the fault clears (``inf`` for permanent faults)."""
        if self.duration_s is None:
            return math.inf
        return self.time_s + self.duration_s

    def sort_key(self) -> Tuple:
        """Deterministic ordering (time, kind, target repr)."""
        return (self.time_s, self.kind.value, repr(self.target))
