"""Fault-injection campaigns and graceful-degradation support.

* :mod:`repro.faults.events`   - the fault taxonomy (sensors, links,
  routers, VRM droop, tiles) as scheduled :class:`FaultEvent` objects;
* :mod:`repro.faults.campaign` - seeded, deterministic campaigns, with
  Poisson sampling coupled across intensities for monotone sweeps;
* :mod:`repro.faults.state`    - the active-fault view the runtime and
  NoC model consult;
* :mod:`repro.faults.recovery` - bounded-retry re-mapping policy.

Fault support is strictly opt-in: a runtime without a campaign (or with
an empty one) behaves bit-identically to the fault-free simulator.
"""

from repro.faults.campaign import (
    DEFAULT_FAULT_RATES,
    FaultCampaign,
    FaultRates,
)
from repro.faults.events import (
    PERMANENT_FAULT_KINDS,
    SENSOR_FAULT_KINDS,
    FaultEvent,
    FaultKind,
)
from repro.faults.recovery import RecoveryPolicy
from repro.faults.state import FaultState

__all__ = [
    "DEFAULT_FAULT_RATES",
    "FaultCampaign",
    "FaultEvent",
    "FaultKind",
    "FaultRates",
    "FaultState",
    "PERMANENT_FAULT_KINDS",
    "RecoveryPolicy",
    "SENSOR_FAULT_KINDS",
]
