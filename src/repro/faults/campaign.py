"""Seeded, deterministic fault-injection campaigns.

A :class:`FaultCampaign` is an immutable, time-sorted list of
:class:`~repro.faults.events.FaultEvent` objects.  Two constructors:

* :meth:`FaultCampaign.scheduled` wraps an explicit event list (directed
  tests, worst-case scenarios);
* :meth:`FaultCampaign.sample` draws events from per-category Poisson
  processes out of one ``numpy.random.Generator`` seed.

Sampling is *coupled across intensities* by thinning: events are always
drawn at the full category rate, each gets one uniform acceptance draw,
and an event survives iff its draw falls below ``intensity``.  Two
campaigns sampled with the same seed and intensities ``a <= b``
therefore satisfy ``events(a) ⊆ events(b)`` - the property that makes
fault-sweep degradation curves monotone by construction rather than by
luck of independent re-sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Sequence, Tuple, Union

import numpy as np

from repro.chip.cmp import ChipDescription
from repro.faults.events import FaultEvent, FaultKind
from repro.noc.topology import MeshTopology


@dataclass(frozen=True)
class FaultRates:
    """Chip-wide expected fault occurrences per second, by category.

    Rates are for the *whole chip* (targets are drawn uniformly), at
    full intensity (``intensity=1.0``).  Durations are means of
    exponential draws; magnitudes are fixed per campaign.

    Attributes:
        sensor_hz: Transient sensor faults (stuck / dead / drifting,
            equiprobable) per second.
        link_hz: Transient link failures per second.
        router_hz: Permanent router failures per second.
        droop_hz: VRM droop episodes per second.
        tile_hz: Permanent tile failures per second.
        sensor_duration_s: Mean duration of a transient sensor fault.
        link_duration_s: Mean duration of a link failure.
        droop_duration_s: Mean duration of a droop episode.
        droop_pct: PSN-floor raise of a droop episode (percent of Vdd).
        drift_pct_per_s: Drift rate of a drifting sensor.
        stuck_pct: Reading a stuck sensor latches (percent of Vdd).
    """

    sensor_hz: float = 0.0
    link_hz: float = 0.0
    router_hz: float = 0.0
    droop_hz: float = 0.0
    tile_hz: float = 0.0
    sensor_duration_s: float = 2.0
    link_duration_s: float = 1.0
    droop_duration_s: float = 0.5
    droop_pct: float = 3.0
    drift_pct_per_s: float = 1.0
    stuck_pct: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if not np.isfinite(value):
                raise ValueError(f"{f.name} must be finite")
        for name in ("sensor_hz", "link_hz", "router_hz", "droop_hz", "tile_hz"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        for name in ("sensor_duration_s", "link_duration_s", "droop_duration_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.droop_pct <= 0:
            raise ValueError("droop_pct must be positive")
        if self.stuck_pct < 0:
            raise ValueError("stuck_pct must be non-negative")

    def scaled(self, factor: float) -> "FaultRates":
        """A copy with every rate multiplied by ``factor``."""
        if factor < 0 or not np.isfinite(factor):
            raise ValueError("factor must be finite and non-negative")
        return replace(
            self,
            sensor_hz=self.sensor_hz * factor,
            link_hz=self.link_hz * factor,
            router_hz=self.router_hz * factor,
            droop_hz=self.droop_hz * factor,
            tile_hz=self.tile_hz * factor,
        )


#: A plausible "harsh environment" reference point: a handful of sensor
#: and PDN episodes plus the occasional hard failure over a multi-second
#: run on a 60-tile chip.
DEFAULT_FAULT_RATES = FaultRates(
    sensor_hz=0.8,
    link_hz=0.3,
    router_hz=0.05,
    droop_hz=0.6,
    tile_hz=0.1,
)


@dataclass(frozen=True)
class FaultCampaign:
    """An immutable, time-sorted fault-injection schedule."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=FaultEvent.sort_key))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def empty(self) -> bool:
        return not self.events

    def count(self, kind: FaultKind) -> int:
        """Number of scheduled events of one kind."""
        return sum(1 for e in self.events if e.kind is kind)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def scheduled(cls, events: Sequence[FaultEvent]) -> "FaultCampaign":
        """Campaign from an explicit event list (sorted automatically)."""
        return cls(events=tuple(events))

    @classmethod
    def sample(
        cls,
        chip: ChipDescription,
        horizon_s: float,
        rng: Union[int, np.random.Generator],
        rates: FaultRates = DEFAULT_FAULT_RATES,
        intensity: float = 1.0,
    ) -> "FaultCampaign":
        """Draw a campaign from seeded Poisson processes.

        Args:
            chip: Platform (supplies tile / link / domain targets).
            horizon_s: Injection horizon; no event starts past it.
            rng: Seed or explicit ``numpy.random.Generator``.
            rates: Full-intensity category rates.
            intensity: Thinning factor in [0, 1].  Campaigns drawn with
                the same seed are *nested* across intensities (see the
                module docstring), so a sweep over intensities degrades
                monotonically by construction.

        Returns:
            The sampled campaign (empty at ``intensity=0``).
        """
        if horizon_s <= 0 or not np.isfinite(horizon_s):
            raise ValueError("horizon_s must be positive and finite")
        if not 0.0 <= intensity <= 1.0:
            raise ValueError("intensity must be in [0, 1]")
        gen = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        topo = MeshTopology(chip.mesh)
        links = topo.links()
        events = []

        def arrivals(rate_hz: float):
            """Poisson arrival times over the horizon at the full rate."""
            times = []
            t = 0.0
            if rate_hz <= 0:
                return times
            while True:
                t += float(gen.exponential(1.0 / rate_hz))
                if t >= horizon_s:
                    return times
                times.append(t)

        # Every random draw happens regardless of acceptance, so the
        # stream - and hence the kept subset - is identical across
        # intensities with one seed.
        sensor_kinds = (
            FaultKind.SENSOR_STUCK,
            FaultKind.SENSOR_DEAD,
            FaultKind.SENSOR_DRIFT,
        )
        for t in arrivals(rates.sensor_hz):
            keep = float(gen.uniform()) < intensity
            tile = int(gen.integers(chip.tile_count))
            kind = sensor_kinds[int(gen.integers(3))]
            duration = float(gen.exponential(rates.sensor_duration_s))
            magnitude = {
                FaultKind.SENSOR_STUCK: rates.stuck_pct,
                FaultKind.SENSOR_DEAD: 0.0,
                FaultKind.SENSOR_DRIFT: rates.drift_pct_per_s,
            }[kind]
            if keep:
                events.append(
                    FaultEvent(kind, t, tile, max(duration, 1e-6), magnitude)
                )
        for t in arrivals(rates.link_hz):
            keep = float(gen.uniform()) < intensity
            link = links[int(gen.integers(len(links)))]
            duration = float(gen.exponential(rates.link_duration_s))
            if keep:
                events.append(
                    FaultEvent(FaultKind.LINK_FAIL, t, link, max(duration, 1e-6))
                )
        for t in arrivals(rates.router_hz):
            keep = float(gen.uniform()) < intensity
            tile = int(gen.integers(chip.tile_count))
            if keep:
                events.append(FaultEvent(FaultKind.ROUTER_FAIL, t, tile))
        for t in arrivals(rates.droop_hz):
            keep = float(gen.uniform()) < intensity
            domain = int(gen.integers(chip.domain_count))
            duration = float(gen.exponential(rates.droop_duration_s))
            if keep:
                events.append(
                    FaultEvent(
                        FaultKind.VRM_DROOP,
                        t,
                        domain,
                        max(duration, 1e-6),
                        rates.droop_pct,
                    )
                )
        for t in arrivals(rates.tile_hz):
            keep = float(gen.uniform()) < intensity
            tile = int(gen.integers(chip.tile_count))
            if keep:
                events.append(FaultEvent(FaultKind.TILE_FAIL, t, tile))
        return cls.scheduled(events)
