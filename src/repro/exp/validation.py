"""Systematic validation of the fast PSN model against the transient
solver, on exactly the configurations the managers produce.

The fast kernels are fitted on a synthetic corpus; this experiment
checks them where it matters: take mapping decisions from PARM and HM
across the benchmark suite, audit every occupied domain with the MNA
transient solver (`repro.pdn.audit`), and report the per-tile error
distribution.  DESIGN.md (decision #1) commits to this cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.apps.suite import ProfileLibrary
from repro.chip.cmp import ChipDescription, default_chip
from repro.core import HarmonicManager, ParmManager
from repro.pdn.audit import audit_mapping
from repro.runtime.state import ChipState


@dataclass(frozen=True)
class ValidationRow:
    """Fast-vs-transient comparison for one mapping decision."""

    benchmark: str
    manager: str
    vdd: float
    dop: int
    transient_peak_pct: float
    fast_peak_pct: float
    worst_tile_error_pct: float


@dataclass(frozen=True)
class ValidationSummary:
    """Aggregate error statistics over all audited mappings."""

    rows: Sequence[ValidationRow]

    @property
    def mean_abs_peak_error_pct(self) -> float:
        return float(
            np.mean(
                [abs(r.transient_peak_pct - r.fast_peak_pct) for r in self.rows]
            )
        )

    @property
    def worst_tile_error_pct(self) -> float:
        return float(max(r.worst_tile_error_pct for r in self.rows))

    @property
    def rank_agreement(self) -> bool:
        """Does the fast model order the audited mappings like the
        transient solver (Spearman-style: identical sort order)?"""
        by_true = sorted(
            range(len(self.rows)),
            key=lambda i: self.rows[i].transient_peak_pct,
        )
        by_fast = sorted(
            range(len(self.rows)), key=lambda i: self.rows[i].fast_peak_pct
        )
        # Allow local swaps among near-ties (< 0.5 pp apart).
        for a, b in zip(by_true, by_fast):
            if a == b:
                continue
            if abs(
                self.rows[a].transient_peak_pct
                - self.rows[b].transient_peak_pct
            ) > 0.5:
                return False
        return True


def validate_on_manager_decisions(
    benchmarks: Sequence[str] = ("fft", "blackscholes", "canneal", "swaptions"),
    chip: Optional[ChipDescription] = None,
    window_s: float = 200e-9,
    dt_s: float = 100e-12,
    library: Optional[ProfileLibrary] = None,
) -> ValidationSummary:
    """Audit PARM and HM decisions for several benchmarks.

    Returns the error summary; rows carry per-decision detail.
    ``chip`` / ``library`` default to fresh instances; pass shared ones
    to reuse profile caches across report sections.
    """
    chip = chip or default_chip()
    library = library or ProfileLibrary()
    rows: List[ValidationRow] = []
    for name in benchmarks:
        profile = library.get(name)
        for manager in (ParmManager(), HarmonicManager()):
            decision = manager.try_map(profile, 100.0, ChipState(chip))
            if decision is None:
                continue
            graph = profile.graph(decision.dop)
            audit = audit_mapping(
                chip, decision, graph, window_s=window_s, dt_s=dt_s
            )
            rows.append(
                ValidationRow(
                    benchmark=name,
                    manager=manager.name,
                    vdd=decision.vdd,
                    dop=decision.dop,
                    transient_peak_pct=audit.chip_peak_pct,
                    fast_peak_pct=float(np.max(audit.fast_peak_psn_pct)),
                    worst_tile_error_pct=audit.fast_model_peak_error_pct,
                )
            )
    return ValidationSummary(rows=tuple(rows))


def print_validation(summary: Optional[ValidationSummary] = None) -> None:
    summary = summary or validate_on_manager_decisions()
    print("Validation: fast PSN kernel vs transient solver on real mappings")
    print(
        f"{'benchmark':>13s} {'manager':>8s} {'Vdd':>5s} {'DoP':>4s} "
        f"{'transient %':>12s} {'fast %':>7s} {'worst err':>10s}"
    )
    for r in summary.rows:
        print(
            f"{r.benchmark:>13s} {r.manager:>8s} {r.vdd:>4.1f}V {r.dop:>4d} "
            f"{r.transient_peak_pct:>12.2f} {r.fast_peak_pct:>7.2f} "
            f"{r.worst_tile_error_pct:>9.2f}pp"
        )
    print(
        f"mean |peak error| = {summary.mean_abs_peak_error_pct:.2f} pp, "
        f"worst tile error = {summary.worst_tile_error_pct:.2f} pp, "
        f"rank agreement = {summary.rank_agreement}"
    )
