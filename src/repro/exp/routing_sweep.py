"""Routing-policy sweep: latency and throughput vs injection rate.

Extension experiment comparing the paper's PANR against XY, odd-even
and ICON on the flit-level mesh model, across offered load.  Each sweep
point runs the fast :class:`~repro.noc.engine.ArrayNocEngine` (pinned
flit-for-flit equivalent of the legacy cycle simulator) on an 8x8 mesh
with a synthetic PSN hotspot band across the middle rows - the setting
where PSN-aware adaptivity should pay off - under uniform-random
traffic.

Points are pure functions of their :class:`SweepPoint` spec, so the
sweep fans across :func:`repro.perf.parallel.map_tasks` workers and the
resulting table is byte-identical to a serial run for any worker count
(``tests/exp/test_routing_sweep.py`` pins this).  Per-point seeds are
deterministic: seed ``s`` always produces the same traffic pattern, and
every policy sees the identical pattern for a fair comparison.

Context-free policies (XY, west-first, odd-even) do not fan out per
point: all of a policy's (rate, seed) grid points become lanes of one
:class:`~repro.noc.batch.BatchedNocEngine` run (:func:`run_batch`),
which advances every lane in one vectorised lock-step pass.  Each lane
is pinned flit-for-flit identical to the scalar engine, so the rows are
byte-identical to the per-point path; only adaptive policies (PANR,
ICON), whose routing reads live congestion state, still run one
:func:`run_point` task per grid point.

``python -m repro routing`` drives this module from the command line;
the ``routing`` report section embeds the same table.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chip.mesh import MeshGeometry
from repro.noc.cycle.simulator import TrafficFlow
from repro.noc.engine import ArrayNocEngine
from repro.noc.routing import make_routing

#: Policies compared by default (evaluation names of ``make_routing``).
DEFAULT_POLICIES: Tuple[str, ...] = ("xy", "odd-even", "icon", "panr")

#: Offered injection rates (flits/cycle/tile) of the default sweep.
DEFAULT_RATES: Tuple[float, ...] = (0.05, 0.15, 0.25, 0.35)

#: PSN of quiet tiles / of the hotspot band (percent of Vdd).
PSN_QUIET_PCT = 4.0
PSN_HOT_PCT = 12.0


@dataclass(frozen=True)
class SweepPoint:
    """One (policy, rate, seed) cell of the sweep - a pure-function spec."""

    policy: str
    injection_rate_flits: float
    seed: int
    mesh_width: int = 8
    mesh_height: int = 8
    cycles: int = 2000
    packet_size_flits: int = 4


@dataclass(frozen=True)
class PointResult:
    """Raw metrics of one simulated sweep point."""

    point: SweepPoint
    avg_latency_cycles: float
    p95_latency_cycles: float
    throughput_flits_per_cycle: float
    delivered_pct: float


@dataclass(frozen=True)
class SweepRow:
    """Seed-averaged metrics for one (policy, injection rate) pair."""

    policy: str
    injection_rate_flits: float
    avg_latency_cycles: float
    p95_latency_cycles: float
    throughput_flits_per_cycle: float
    delivered_pct: float


def hotspot_psn(mesh: MeshGeometry) -> np.ndarray:
    """Quiet mesh with a hot band across the two middle rows.

    Mirrors the buffer-threshold ablation's noise field: the band makes
    PSN-aware policies route around the middle of the chip while
    PSN-blind ones cut straight through it.
    """
    psn = np.full(mesh.tile_count, PSN_QUIET_PCT)
    band = (mesh.height // 2 - 1, mesh.height // 2)
    for tile in range(mesh.tile_count):
        _, y = mesh.coord_of(tile)
        if y in band:
            psn[tile] = PSN_HOT_PCT
    return psn


def uniform_random_flows(
    mesh: MeshGeometry,
    rate_flits: float,
    seed: int,
    packet_size_flits: int,
) -> List[TrafficFlow]:
    """One flow per tile to a uniformly random other tile."""
    rng = np.random.default_rng(seed)
    n = mesh.tile_count
    flows = []
    for src in range(n):
        dst = int(rng.integers(0, n - 1))
        if dst >= src:  # skip self, keep the draw uniform over others
            dst += 1
        flows.append(
            TrafficFlow(
                src=src,
                dst=dst,
                rate=rate_flits,
                packet_size=packet_size_flits,
            )
        )
    return flows


def _point_result(point: SweepPoint, stats) -> PointResult:
    """Fold one engine run's stats into the point's result row."""
    delivered_pct = (
        100.0 * stats.packets_delivered / stats.packets_injected
        if stats.packets_injected
        else 0.0
    )
    return PointResult(
        point=point,
        avg_latency_cycles=stats.avg_packet_latency,
        p95_latency_cycles=stats.p95_packet_latency,
        throughput_flits_per_cycle=stats.throughput_flits_per_cycle,
        delivered_pct=delivered_pct,
    )


def run_point(point: SweepPoint) -> PointResult:
    """Simulate one sweep point (module-level: the ``map_tasks`` task).

    Inside a warm pool worker the engine adopts the shared topology and
    pre-built route table for this mesh/policy when published; both
    hold exactly the values the engine would compute itself, so the
    result is byte-identical either way.
    """
    from repro.perf.pool import warm_world

    mesh = MeshGeometry(point.mesh_width, point.mesh_height)
    flows = uniform_random_flows(
        mesh, point.injection_rate_flits, point.seed, point.packet_size_flits
    )
    topology = route_table = None
    world = warm_world()
    if world is not None:
        topology = world.topology(point.mesh_width, point.mesh_height)
        route_table = world.route_table(
            point.mesh_width, point.mesh_height, point.policy
        )
    engine = ArrayNocEngine(
        mesh,
        make_routing(point.policy),
        psn_pct=hotspot_psn(mesh),
        seed=point.seed,
        topology=topology,
        route_table=route_table,
    )
    return _point_result(point, engine.run(flows, point.cycles))


def run_batch(points: Sequence[SweepPoint]) -> List[PointResult]:
    """Simulate one context-free policy's grid points as a single batch.

    Module-level ``map_tasks`` task: every point becomes one lane of a
    :class:`~repro.noc.batch.BatchedNocEngine`, so the whole group
    advances through shared vectorised phases instead of running one
    scalar engine per point.  Each lane is pinned flit-for-flit
    identical to the scalar engine, so the returned results match
    :func:`run_point` byte for byte.  Points must agree on everything
    except rate and seed - :func:`routing_sweep` groups them that way.
    """
    from repro.harness.errors import ConfigError
    from repro.noc.batch import BatchedNocEngine
    from repro.perf.pool import warm_world

    points = list(points)
    if not points:
        return []
    first = points[0]
    if any(
        (p.policy, p.mesh_width, p.mesh_height, p.cycles)
        != (first.policy, first.mesh_width, first.mesh_height, first.cycles)
        for p in points
    ):
        raise ConfigError(
            "batched sweep points must share policy, mesh and cycles",
            points=[repr(p) for p in points[:4]],
        )
    mesh = MeshGeometry(first.mesh_width, first.mesh_height)
    flows = [
        uniform_random_flows(
            mesh, p.injection_rate_flits, p.seed, p.packet_size_flits
        )
        for p in points
    ]
    topology = route_table = None
    world = warm_world()
    if world is not None:
        topology = world.topology(first.mesh_width, first.mesh_height)
        route_table = world.route_table(
            first.mesh_width, first.mesh_height, first.policy
        )
    engine = BatchedNocEngine(
        mesh,
        make_routing(first.policy),
        n_lanes=len(points),
        psn_pct=hotspot_psn(mesh),
        seeds=[p.seed for p in points],
        topology=topology,
        route_table=route_table,
    )
    stats_list = engine.run(flows, first.cycles)
    return [
        _point_result(point, stats)
        for point, stats in zip(points, stats_list)
    ]


def routing_sweep(
    rates: Sequence[float] = DEFAULT_RATES,
    policies: Sequence[str] = DEFAULT_POLICIES,
    seeds: Sequence[int] = (1, 2),
    mesh_width: int = 8,
    mesh_height: int = 8,
    cycles: int = 2000,
    packet_size_flits: int = 4,
    workers: int = 1,
) -> List[SweepRow]:
    """Latency/throughput vs injection rate for each routing policy.

    Context-free policies pack their whole (rate, seed) grid into one
    :func:`run_batch` lock-step task each; adaptive policies fan one
    :func:`run_point` task per grid point.  Both task kinds go through
    :func:`repro.perf.parallel.map_tasks` and every task is a pure
    function of its spec, so the returned rows are identical for any
    worker count - and byte-identical to the historical all-scalar
    path, because each batch lane is pinned flit-for-flit against the
    scalar engine.

    Returns:
        One seed-averaged :class:`SweepRow` per (policy, rate), in
        policy-major, rate-ascending order.
    """
    from repro.perf.parallel import map_tasks

    points = [
        SweepPoint(
            policy=policy,
            injection_rate_flits=rate,
            seed=seed,
            mesh_width=mesh_width,
            mesh_height=mesh_height,
            cycles=cycles,
            packet_size_flits=packet_size_flits,
        )
        for policy in policies
        for rate in rates
        for seed in seeds
    ]
    batch_groups = [
        tuple(p for p in points if p.policy == policy)
        for policy in policies
        if make_routing(policy).context_free
    ]
    scalar_points = [
        p for p in points if not make_routing(p.policy).context_free
    ]
    by_point: Dict[SweepPoint, PointResult] = {}
    for group_results in map_tasks(run_batch, batch_groups, workers):
        for result in group_results:
            by_point[result.point] = result
    for result in map_tasks(run_point, scalar_points, workers):
        by_point[result.point] = result
    results = [by_point[point] for point in points]

    grouped: Dict[Tuple[str, float], List[PointResult]] = {}
    for result in results:
        key = (result.point.policy, result.point.injection_rate_flits)
        grouped.setdefault(key, []).append(result)
    rows = []
    for policy in policies:
        for rate in rates:
            cell = grouped[(policy, rate)]
            rows.append(
                SweepRow(
                    policy=policy,
                    injection_rate_flits=rate,
                    avg_latency_cycles=float(
                        np.mean([r.avg_latency_cycles for r in cell])
                    ),
                    p95_latency_cycles=float(
                        np.mean([r.p95_latency_cycles for r in cell])
                    ),
                    throughput_flits_per_cycle=float(
                        np.mean([r.throughput_flits_per_cycle for r in cell])
                    ),
                    delivered_pct=float(
                        np.mean([r.delivered_pct for r in cell])
                    ),
                )
            )
    return rows


def print_routing_sweep(rows: Sequence[SweepRow]) -> None:
    """Print the sweep as a fixed-width table (report embedding)."""
    print(
        "Routing sweep: latency/throughput vs injection rate "
        "(hotspot PSN band, seed-averaged)"
    )
    print(
        f"{'policy':>9s} {'rate[f/c]':>10s} {'avg_lat[cyc]':>12s} "
        f"{'p95_lat[cyc]':>12s} {'thr[f/c]':>9s} {'delivered[%]':>12s}"
    )
    for row in rows:
        print(
            f"{row.policy:>9s} {row.injection_rate_flits:>10.3f} "
            f"{row.avg_latency_cycles:>12.2f} "
            f"{row.p95_latency_cycles:>12.2f} "
            f"{row.throughput_flits_per_cycle:>9.3f} "
            f"{row.delivered_pct:>12.1f}"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``python -m repro routing [--workers N] [...]``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro routing",
        description=(
            "Routing-policy latency/throughput sweep on the array NoC "
            "engine (XY / odd-even / ICON / PANR)."
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="sweep-point worker processes (results identical for any "
        "count; default 1)",
    )
    parser.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=list(DEFAULT_RATES),
        metavar="R",
        help="offered injection rates in flits/cycle/tile",
    )
    parser.add_argument(
        "--policies",
        nargs="+",
        default=list(DEFAULT_POLICIES),
        metavar="P",
        help="routing policies to compare (make_routing names)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[1, 2],
        metavar="S",
        help="traffic-pattern seeds to average over",
    )
    parser.add_argument(
        "--cycles",
        type=int,
        default=2000,
        help="simulated cycles per point (default 2000)",
    )
    parser.add_argument(
        "--mesh",
        type=int,
        nargs=2,
        default=[8, 8],
        metavar=("W", "H"),
        help="mesh width and height (default 8 8)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    rows = routing_sweep(
        rates=args.rates,
        policies=args.policies,
        seeds=args.seeds,
        mesh_width=args.mesh[0],
        mesh_height=args.mesh[1],
        cycles=args.cycles,
        workers=args.workers,
    )
    print_routing_sweep(rows)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
