"""Ablation studies for the design choices DESIGN.md calls out.

* **Buffer threshold B** (Section 5.1): the paper set PANR's congestion
  threshold to 50 % "after analyzing the effects of different occupancy
  levels on router throughput, with a cycle-accurate NoC simulator" -
  :func:`buffer_threshold_sweep` is that analysis.
* **DoP cap at 32** (Section 5.1): "beyond which most of the
  applications were observed to have lower performance due to
  communication (synchronization) overheads" - :func:`dop_sweep`.
* **PARM components**: what each ingredient of Algorithm 1+2 buys -
  activity-aware clustering, Vdd adaptation - measured as peak PSN and
  completions on a mixed workload (:func:`parm_component_ablation`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.apps.profiles import ApplicationProfile, build_profile
from repro.apps.suite import ProfileLibrary, benchmark
from repro.apps.workload import WorkloadType, generate_workload
from repro.chip.cmp import ChipDescription, default_chip
from repro.chip.mesh import MeshGeometry
from repro.core.base import MappingDecision, ResourceManager
from repro.core.clustering import cluster_tasks
from repro.core.placement import place_clusters
from repro.core.selection import ParmManager
from repro.noc.cycle import TrafficFlow
from repro.noc.engine import ArrayNocEngine
from repro.noc.routing import PanrRouting, make_routing
from repro.runtime.simulator import RuntimeSimulator
from repro.runtime.state import ChipState


# ----------------------------------------------------------------------
# Buffer-occupancy threshold B
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BufferThresholdRow:
    threshold: float
    avg_latency_cycles: float
    throughput_flits_per_cycle: float
    noisy_traffic_flits_per_cycle: float


def buffer_threshold_sweep(
    thresholds: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    cycles: int = 5000,
    seed: int = 0,
) -> List[BufferThresholdRow]:
    """PANR router throughput/latency vs the congestion threshold B.

    Diagonal flows (adaptive direction choice at every hop) cross a
    noisy band under heavy load.  A low B almost always routes by
    congestion and ploughs through the noisy tiles; a high B sticks to
    noisy-tile avoidance even when buffers back up.  The paper picked
    B = 50 % from exactly this throughput analysis.
    """
    mesh = MeshGeometry(8, 8)
    psn = np.zeros(mesh.tile_count)
    # A noisy band across rows 3-4.
    for tile in mesh.tiles():
        x, y = mesh.coord_of(tile)
        if y in (3, 4) and 1 <= x <= 6:
            psn[tile] = 8.0
    flows = [
        TrafficFlow(0, 63, 0.45),
        TrafficFlow(1, 62, 0.45),
        TrafficFlow(2, 61, 0.40),
        TrafficFlow(8, 55, 0.40),
        TrafficFlow(16, 47, 0.35),
    ]
    rows = []
    for threshold in thresholds:
        sim = ArrayNocEngine(
            mesh,
            PanrRouting(buffer_threshold=threshold),
            psn_pct=psn,
            seed=seed,
        )
        stats = sim.run(flows, cycles)
        noisy = float(
            sum(
                stats.router_flits_per_cycle[t]
                for t in mesh.tiles()
                if psn[t] > 0
            )
        )
        rows.append(
            BufferThresholdRow(
                threshold=threshold,
                avg_latency_cycles=stats.avg_packet_latency,
                throughput_flits_per_cycle=stats.throughput_flits_per_cycle,
                noisy_traffic_flits_per_cycle=noisy,
            )
        )
    return rows


def print_buffer_threshold(rows: Optional[List[BufferThresholdRow]] = None) -> None:
    rows = rows if rows is not None else buffer_threshold_sweep()
    print("Ablation: PANR buffer-occupancy threshold B (cycle-level NoC)")
    print(
        f"{'B':>5s} {'avg latency':>12s} {'throughput':>11s} "
        f"{'noisy-tile traffic':>19s}"
    )
    for r in rows:
        print(
            f"{r.threshold:>5.1f} {r.avg_latency_cycles:>11.1f}c "
            f"{r.throughput_flits_per_cycle:>10.3f} "
            f"{r.noisy_traffic_flits_per_cycle:>18.2f}"
        )


# ----------------------------------------------------------------------
# DoP cap
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DopRow:
    dop: int
    wcet_s: float


def dop_sweep(
    benchmark_name: str = "fluidanimate",
    vdd: float = 0.6,
    dops: Sequence[int] = (4, 8, 16, 24, 32, 40, 48, 64),
) -> List[DopRow]:
    """WCET vs DoP, extending past the paper's cap of 32.

    Synchronisation overhead grows with thread count, so the curve
    flattens around 32 and turns upward beyond - the basis for limiting
    DoP to 32.
    """
    profile = build_profile(benchmark(benchmark_name), dops=tuple(dops), vdds=(vdd,))
    return [DopRow(dop, profile.wcet_s(vdd, dop)) for dop in dops]


def print_dop_sweep(rows: Optional[List[DopRow]] = None) -> None:
    rows = rows if rows is not None else dop_sweep()
    print("Ablation: WCET vs DoP (sync overhead caps useful parallelism)")
    print(f"{'DoP':>5s} {'WCET':>9s}")
    for r in rows:
        print(f"{r.dop:>5d} {r.wcet_s * 1000:>8.1f}ms")


# ----------------------------------------------------------------------
# PARM component ablation
# ----------------------------------------------------------------------

class ActivityBlindParm(ParmManager):
    """PARM with activity-blind clustering (communication order only)."""

    name = "PARM-noact"

    def try_map(self, profile, deadline_s, state):
        return _variant_map(profile, deadline_s, state, activity_aware=False)


class FixedVddParm(ParmManager):
    """PARM forced to the nominal Vdd (no DVS adaptation)."""

    name = "PARM-novdd"

    def try_map(self, profile, deadline_s, state):
        vdd = state.chip.vdd_ladder.highest
        for dop in sorted(profile.supported_dops, reverse=True):
            if profile.wcet_s(vdd, dop) >= deadline_s:
                break
            from repro.core.mapping import psn_aware_mapping

            decision = psn_aware_mapping(profile, vdd, dop, state)
            if decision is not None:
                return decision
        return None


def _variant_map(
    profile: ApplicationProfile,
    deadline_s: float,
    state: ChipState,
    activity_aware: bool,
) -> Optional[MappingDecision]:
    ladder = state.chip.vdd_ladder
    for vdd in ladder:
        for dop in sorted(profile.supported_dops, reverse=True):
            if profile.wcet_s(vdd, dop) >= deadline_s:
                break
            power = profile.power_w(vdd, dop)
            if power > state.available_power_w():
                continue
            graph = profile.graph(dop)
            clusters = cluster_tasks(graph, activity_aware=activity_aware)
            free = state.free_domains()
            mapping = place_clusters(graph, clusters, free, state.chip.domains)
            if mapping is None:
                continue
            return MappingDecision(
                vdd=vdd, dop=dop, task_to_tile=mapping, power_w=power
            )
    return None


@dataclass(frozen=True)
class ParmAblationRow:
    variant: str
    completed: float
    peak_psn_pct: float
    avg_psn_pct: float
    ve_count: float


def parm_component_ablation(
    n_apps: int = 20,
    seeds: Sequence[int] = (1, 2),
    arrival_interval_s: float = 0.1,
    workload_type: WorkloadType = WorkloadType.MIXED,
    chip: Optional[ChipDescription] = None,
    library: Optional[ProfileLibrary] = None,
) -> List[ParmAblationRow]:
    """Peak PSN / completions for PARM variants with pieces disabled.

    Deadlines are loose so every variant maps every application at its
    preferred operating point - the comparison isolates the mapping
    policy's effect on PSN rather than queueing luck.  ``chip`` /
    ``library`` default to fresh instances; pass shared ones to reuse
    profile and topology caches across report sections.
    """
    chip = chip or default_chip()
    library = library or ProfileLibrary()
    variants: Sequence[ResourceManager] = (
        ParmManager(),
        ActivityBlindParm(),
        FixedVddParm(),
    )
    rows = []
    for manager in variants:
        completed, peak, avg, ves = [], [], [], []
        for seed in seeds:
            workload = generate_workload(
                workload_type,
                arrival_interval_s,
                n_apps=n_apps,
                seed=seed,
                library=library,
                deadline_slack_range=(30.0, 30.0),
            )
            sim = RuntimeSimulator(
                chip, manager, make_routing("panr"), seed=seed + 500
            )
            metrics = sim.run(workload)
            completed.append(metrics.completed_count)
            peak.append(metrics.peak_psn_pct)
            avg.append(metrics.avg_psn_pct)
            ves.append(metrics.total_ve_count)
        rows.append(
            ParmAblationRow(
                variant=manager.name,
                completed=float(np.mean(completed)),
                peak_psn_pct=float(np.mean(peak)),
                avg_psn_pct=float(np.mean(avg)),
                ve_count=float(np.mean(ves)),
            )
        )
    return rows


def print_parm_ablation(rows: Optional[List[ParmAblationRow]] = None) -> None:
    rows = rows if rows is not None else parm_component_ablation()
    print("Ablation: PARM components (mixed workload, PANR routing)")
    print(
        f"{'variant':>12s} {'completed':>10s} {'peak PSN %':>11s} "
        f"{'avg PSN %':>10s} {'VEs':>8s}"
    )
    for r in rows:
        print(
            f"{r.variant:>12s} {r.completed:>10.1f} {r.peak_psn_pct:>11.2f} "
            f"{r.avg_psn_pct:>10.2f} {r.ve_count:>8.0f}"
        )


# ----------------------------------------------------------------------
# Dark-silicon power budget sensitivity (extension)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DspbRow:
    budget_w: float
    parm_completed: float
    hm_completed: float
    thermally_safe: bool


def dspb_sensitivity_sweep(
    budgets_w: Sequence[float] = (40.0, 55.0, 65.0, 80.0, 100.0),
    n_apps: int = 12,
    seeds: Sequence[int] = (1,),
    arrival_interval_s: float = 0.1,
    library: Optional[ProfileLibrary] = None,
) -> List[DspbRow]:
    """Completions vs. the DsPB, for PARM+PANR and HM+XY.

    The paper fixes the budget at 65 W; this sweep shows how the Fig. 8
    advantage depends on that choice, and uses the thermal model to mark
    which budgets a mobile-class cooling solution actually supports
    (the 65 W default sits right at the junction limit).
    """
    from repro.chip.cmp import ChipDescription
    from repro.chip.dvfs import VddLadder
    from repro.chip.mesh import MeshGeometry
    from repro.chip.technology import technology
    from repro.chip.thermal import ThermalModel
    from repro.core import HarmonicManager

    # The chip is rebuilt per budget (the budget is a chip field), but
    # the profile library is budget-independent and can be shared.
    library = library or ProfileLibrary()
    rows = []
    for budget in budgets_w:
        chip = ChipDescription(
            mesh=MeshGeometry(10, 6),
            tech=technology("7nm"),
            vdd_ladder=VddLadder.paper_default(),
            dark_silicon_budget_w=budget,
        )
        thermal = ThermalModel(chip.mesh)
        safe = thermal.is_thermally_safe([budget / chip.tile_count] * chip.tile_count)
        completed = {}
        for name, manager, routing in (
            ("parm", ParmManager(), "panr"),
            ("hm", HarmonicManager(), "xy"),
        ):
            counts = []
            for seed in seeds:
                workload = generate_workload(
                    workload_type=WorkloadType.MIXED,
                    arrival_interval_s=arrival_interval_s,
                    n_apps=n_apps,
                    seed=seed,
                    library=library,
                )
                sim = RuntimeSimulator(
                    chip, manager, make_routing(routing), seed=seed + 99
                )
                counts.append(sim.run(workload).completed_count)
            completed[name] = float(np.mean(counts))
        rows.append(
            DspbRow(
                budget_w=budget,
                parm_completed=completed["parm"],
                hm_completed=completed["hm"],
                thermally_safe=safe,
            )
        )
    return rows


def print_dspb_sweep(rows: Optional[List[DspbRow]] = None) -> None:
    rows = rows if rows is not None else dspb_sensitivity_sweep()
    print("Extension: sensitivity to the dark-silicon power budget")
    print(
        f"{'DsPB':>6s} {'PARM+PANR done':>15s} {'HM+XY done':>11s} "
        f"{'cooling OK':>11s}"
    )
    for r in rows:
        print(
            f"{r.budget_w:>5.0f}W {r.parm_completed:>15.1f} "
            f"{r.hm_completed:>11.1f} {str(r.thermally_safe):>11s}"
        )


# ----------------------------------------------------------------------
# Checkpoint-period ablation (extension, Section 4.5 / 5.1 parameters)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CheckpointRow:
    period_s: float
    steady_overhead_pct: float
    loss_per_ve_ms: float
    combined_cost_pct: float


def checkpoint_period_sweep(
    periods_s: Sequence[float] = (0.1e-3, 0.5e-3, 1e-3, 5e-3, 20e-3),
    frequency_hz: float = 0.74e9,
    ve_rate_hz: float = 1.0,
) -> List[CheckpointRow]:
    """Trade-off behind the paper's 1 ms checkpoint period.

    Short periods pay steady checkpointing overhead (256 cycles each);
    long periods lose more re-executed work per rollback (half a period
    plus 10000 restore cycles).  At the residual voltage-emergency rate
    of a PARM-managed chip (~1 VE/s per affected tile) the combined cost
    is minimised almost exactly at the paper's 1 ms; higher VE rates
    (unmanaged noise) would favour shorter periods.
    """
    from repro.runtime.checkpoint import CheckpointPolicy

    rows = []
    for period in periods_s:
        policy = CheckpointPolicy(period_s=period)
        steady = (policy.execution_dilation(frequency_hz) - 1.0) * 100.0
        per_ve = policy.rollback_penalty_s(frequency_hz)
        combined = steady + 100.0 * ve_rate_hz * per_ve
        rows.append(
            CheckpointRow(
                period_s=period,
                steady_overhead_pct=steady,
                loss_per_ve_ms=per_ve * 1e3,
                combined_cost_pct=combined,
            )
        )
    return rows


def print_checkpoint_sweep(rows: Optional[List[CheckpointRow]] = None) -> None:
    rows = rows if rows is not None else checkpoint_period_sweep()
    print("Extension: checkpoint-period trade-off (VE rate 1/s, 0.74 GHz)")
    print(
        f"{'period':>8s} {'steady %':>9s} {'loss/VE':>9s} {'combined %':>11s}"
    )
    for r in rows:
        print(
            f"{r.period_s * 1e3:>6.1f}ms {r.steady_overhead_pct:>9.3f} "
            f"{r.loss_per_ve_ms:>7.2f}ms {r.combined_cost_pct:>11.2f}"
        )
