"""Statistical verification: confidence-bounded reliability claims.

The campaigns elsewhere in :mod:`repro.exp` report point estimates from
a handful of seeds.  This package turns those into *verified* claims in
the statistical-model-checking sense (cf. the probabilistic NoC
verification line, arXiv:2108.13148): an estimate comes with a
confidence interval at a requested level, replicas are drawn until the
interval is tight enough (stop-when-confident) or a hard budget runs
out, and rare events are reached by multilevel importance splitting
instead of brute-force sampling.

Layout:

* :mod:`repro.exp.verify.intervals`  - interval estimators (Wilson,
  Clopper-Pearson, Hoeffding, DKW quantile band);
* :mod:`repro.exp.verify.estimands`  - adapters turning one seeded
  model run into one i.i.d. sample (PDN voltage emergencies, fault
  survival, NoC packet latency);
* :mod:`repro.exp.verify.sequential` - the stop-when-confident
  :class:`SequentialEstimator`, replicas as supervised campaign cells;
* :mod:`repro.exp.verify.splitting`  - multilevel importance splitting
  for rare voltage-emergency probabilities;
* :mod:`repro.exp.verify.compare`    - interval columns and
  significance verdicts for the PARM-vs-HM comparison;
* :mod:`repro.exp.verify.cli`        - ``python -m repro verify``.
"""

from repro.exp.verify.estimands import (
    FaultSurvivalEstimand,
    PacketLatencyEstimand,
    PdnEmergencyEstimand,
    estimand_from_spec,
    register_estimand,
)
from repro.exp.verify.intervals import (
    Interval,
    clopper_pearson,
    dkw_epsilon,
    dkw_quantile,
    hoeffding,
    wilson,
)
from repro.exp.verify.sequential import (
    ReplicaCell,
    SequentialEstimator,
    StopRule,
    VerifyResult,
)
from repro.exp.verify.splitting import SplittingConfig, SplittingResult, run_splitting

__all__ = [
    "FaultSurvivalEstimand",
    "Interval",
    "PacketLatencyEstimand",
    "PdnEmergencyEstimand",
    "ReplicaCell",
    "SequentialEstimator",
    "SplittingConfig",
    "SplittingResult",
    "StopRule",
    "VerifyResult",
    "clopper_pearson",
    "dkw_epsilon",
    "dkw_quantile",
    "estimand_from_spec",
    "hoeffding",
    "register_estimand",
    "run_splitting",
    "wilson",
]
