"""PARM-vs-HM comparison with intervals and significance verdicts.

The headline completion-rate comparison elsewhere in the report is a
pair of seed-averaged point estimates.  This module re-states it as a
verified claim: per-application completion is a Bernoulli trial
(``seeds x n_apps`` trials per framework), each framework's completion
probability gets a Wilson interval, and the difference gets a Newcombe
score interval (the standard companion of Wilson for a difference of
proportions: combine the two one-sided Wilson excursions in
quadrature).  A row is "statistically significant at the chosen level"
exactly when the difference interval excludes zero - otherwise the
verdict says so, which is just as important a statement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.exp.verify.intervals import Interval, wilson
from repro.harness.errors import ConfigError

#: The paper's headline pairing (candidate vs baseline).
DEFAULT_CANDIDATE = "PARM+PANR"
DEFAULT_BASELINE = "HM+XY"


@dataclass(frozen=True)
class ComparisonRow:
    """One workload's completion-probability comparison."""

    workload: str
    candidate: str
    baseline: str
    candidate_interval: Interval
    baseline_interval: Interval
    diff: float
    diff_lo: float
    diff_hi: float

    @property
    def significant(self) -> bool:
        """Difference interval excludes zero at the chosen confidence."""
        return self.diff_lo > 0.0 or self.diff_hi < 0.0

    @property
    def verdict(self) -> str:
        pct = f"{self.candidate_interval.confidence * 100:g}%"
        if self.significant:
            winner = self.candidate if self.diff > 0 else self.baseline
            return f"significant at {pct} ({winner} completes more)"
        return f"not significant at {pct}"


def newcombe_diff(
    a: Interval, b: Interval
) -> Tuple[float, float, float]:
    """Newcombe score interval for the difference ``a.p - b.p``.

    Combines each Wilson interval's one-sided excursions in quadrature:
    ``lo = d - sqrt((p_a - lo_a)^2 + (hi_b - p_b)^2)`` and symmetrically
    for ``hi``.  Keeps Wilson's boundary behaviour (sane at 0/1, never
    escapes [-1, 1]).
    """
    if a.method != "wilson" or b.method != "wilson":
        raise ConfigError(
            "newcombe_diff combines Wilson intervals",
            methods=(a.method, b.method),
        )
    diff = a.estimate - b.estimate
    lo = diff - math.sqrt(
        (a.estimate - a.lo) ** 2 + (b.hi - b.estimate) ** 2
    )
    hi = diff + math.sqrt(
        (a.hi - a.estimate) ** 2 + (b.estimate - b.lo) ** 2
    )
    return diff, max(-1.0, lo), min(1.0, hi)


def completion_interval(
    result: Any, n_apps: int, confidence: float = 0.95
) -> Interval:
    """Wilson interval for P(app completes) from a framework result.

    Args:
        result: A :class:`~repro.exp.runner.FrameworkResult`; its
            per-seed ``runs`` supply the Bernoulli trials (one per
            application per seed).
        n_apps: Applications per run (the per-run trial count).
        confidence: Two-sided confidence level.
    """
    runs = result.runs
    if not runs:
        raise ConfigError(
            "framework result carries no runs", framework=result.framework
        )
    successes = sum(r.completed_count for r in runs)
    return wilson(int(successes), len(runs) * int(n_apps), confidence)


def compare_completion(
    workload_types: Optional[Sequence[Any]] = None,
    arrival_interval_s: float = 0.1,
    n_apps: int = 12,
    seeds: Sequence[int] = (1, 2, 3),
    confidence: float = 0.95,
    candidate: str = DEFAULT_CANDIDATE,
    baseline: str = DEFAULT_BASELINE,
    chip: Any = None,
    library: Any = None,
) -> List[ComparisonRow]:
    """Per-workload completion comparison with intervals and verdicts.

    Runs both frameworks over the same workloads/seeds (each run sees
    the identical generated sequence) and returns one row per workload
    type.
    """
    from repro.apps.suite import ProfileLibrary
    from repro.apps.workload import WorkloadType
    from repro.chip.cmp import default_chip
    from repro.exp.frameworks import framework as fw_lookup
    from repro.exp.runner import run_framework

    if workload_types is None:
        workload_types = list(WorkloadType)
    chip = chip or default_chip()
    library = library or ProfileLibrary()
    rows: List[ComparisonRow] = []
    for workload in workload_types:
        intervals = {}
        for name in (candidate, baseline):
            fr = run_framework(
                fw_lookup(name),
                workload,
                arrival_interval_s,
                n_apps=n_apps,
                seeds=seeds,
                chip=chip,
                library=library,
            )
            intervals[name] = completion_interval(fr, n_apps, confidence)
        diff, lo, hi = newcombe_diff(
            intervals[candidate], intervals[baseline]
        )
        rows.append(
            ComparisonRow(
                workload=workload.value,
                candidate=candidate,
                baseline=baseline,
                candidate_interval=intervals[candidate],
                baseline_interval=intervals[baseline],
                diff=diff,
                diff_lo=lo,
                diff_hi=hi,
            )
        )
    return rows


def print_comparison(rows: Sequence[ComparisonRow]) -> None:
    """Print the interval-annotated completion comparison table."""
    if not rows:
        print("completion comparison: no rows")
        return
    first = rows[0]
    print(
        "Completion probability with "
        f"{first.candidate_interval.confidence * 100:g}% Wilson intervals "
        f"({first.candidate} vs {first.baseline})"
    )
    print(
        f"{'workload':>9s} {'cand p [lo, hi]':>22s} "
        f"{'base p [lo, hi]':>22s} {'diff [lo, hi]':>24s}  verdict"
    )
    for row in rows:
        c, b = row.candidate_interval, row.baseline_interval
        print(
            f"{row.workload:>9s} "
            f"{c.estimate:>6.3f} [{c.lo:.3f}, {c.hi:.3f}] "
            f"{b.estimate:>6.3f} [{b.lo:.3f}, {b.hi:.3f}] "
            f"{row.diff:>+7.3f} [{row.diff_lo:+.3f}, {row.diff_hi:+.3f}]"
            f"  {row.verdict}"
        )
