"""Confidence-interval estimators for the verification layer.

Four estimators cover the three estimand kinds the verifier supports:

* :func:`wilson` and :func:`clopper_pearson` - binomial proportions
  (Bernoulli estimands such as P(voltage emergency)).  Wilson is the
  default: near-nominal coverage at moderate ``n`` without the waste of
  Wald's interval near 0/1.  Clopper-Pearson is the exact (conservative)
  alternative, guaranteed to cover at *every* ``(n, p)``.
* :func:`hoeffding` - distribution-free interval for the mean of any
  bounded variable (e.g. the per-run app-failure fraction).  Width is
  ``(b - a) * sqrt(ln(2/alpha) / (2n))`` - guaranteed coverage at the
  price of being wider than a CLT interval.
* :func:`dkw_quantile` - quantile band from the Dvoretzky-Kiefer-
  Wolfowitz inequality: with probability ``>= confidence`` the empirical
  CDF stays within ``eps = sqrt(ln(2/alpha) / (2n))`` of the true CDF
  everywhere at once, so order statistics bracketing ``q -/+ eps``
  bracket the true ``q``-quantile.

All functions return a frozen :class:`Interval` and validate their
inputs with :class:`~repro.harness.errors.ConfigError` - a verifier
that silently produced a nonsense interval would defeat its purpose.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Any, Dict, Sequence

import numpy as np
from scipy.stats import beta

from repro.harness.errors import ConfigError


@dataclass(frozen=True)
class Interval:
    """A point estimate with its two-sided confidence interval.

    Attributes:
        estimate: The point estimate (proportion, mean, or quantile).
        lo: Lower confidence bound.
        hi: Upper confidence bound.
        confidence: Nominal two-sided coverage level in (0, 1).
        n: Sample size behind the interval.
        method: Estimator name (``"wilson"``, ``"clopper-pearson"``,
            ``"hoeffding"``, ``"dkw"``).
    """

    estimate: float
    lo: float
    hi: float
    confidence: float
    n: int
    method: str

    @property
    def half_width(self) -> float:
        """Half of the interval width - the stop-rule quantity."""
        return 0.5 * (self.hi - self.lo)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the closed interval."""
        return self.lo <= value <= self.hi

    def to_json(self) -> Dict[str, Any]:
        """Plain-JSON form (deterministic: floats only, sorted use)."""
        return {
            "estimate": float(self.estimate),
            "lo": float(self.lo),
            "hi": float(self.hi),
            "confidence": float(self.confidence),
            "n": int(self.n),
            "half_width": float(self.half_width),
            "method": self.method,
        }


def _check_confidence(confidence: float) -> float:
    if not 0.0 < confidence < 1.0 or not math.isfinite(confidence):
        raise ConfigError(
            "confidence must lie strictly inside (0, 1)",
            confidence=confidence,
        )
    return float(confidence)


def _check_counts(successes: int, n: int) -> None:
    if n < 1:
        raise ConfigError("sample size must be at least 1", n=n)
    if not 0 <= successes <= n:
        raise ConfigError(
            "successes must lie in [0, n]", successes=successes, n=n
        )


def _z(confidence: float) -> float:
    """Two-sided standard-normal critical value (stdlib, no tables)."""
    return NormalDist().inv_cdf(0.5 + 0.5 * confidence)


def wilson(successes: int, n: int, confidence: float = 0.95) -> Interval:
    """Wilson score interval for a binomial proportion.

    The score interval inverts the normal test on the *true* ``p``
    rather than the estimate, so it stays inside [0, 1], is never empty,
    and keeps near-nominal coverage even at ``p`` close to 0 or 1 where
    the Wald interval collapses (0 successes still yield an informative
    upper bound).
    """
    confidence = _check_confidence(confidence)
    _check_counts(successes, n)
    z = _z(confidence)
    p = successes / n
    denom = 1.0 + z * z / n
    centre = (p + z * z / (2 * n)) / denom
    spread = (
        z * math.sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n)) / denom
    )
    return Interval(
        estimate=p,
        lo=max(0.0, centre - spread),
        hi=min(1.0, centre + spread),
        confidence=confidence,
        n=n,
        method="wilson",
    )


def clopper_pearson(
    successes: int, n: int, confidence: float = 0.95
) -> Interval:
    """Exact (Clopper-Pearson) binomial interval via beta quantiles.

    Guaranteed coverage ``>= confidence`` at every ``(n, p)`` - the
    conservative choice when a verdict must never over-claim.  The
    endpoints are the usual beta quantiles, with the degenerate
    ``successes = 0`` / ``= n`` edges pinned to exact 0 / 1.
    """
    confidence = _check_confidence(confidence)
    _check_counts(successes, n)
    alpha = 1.0 - confidence
    lo = (
        0.0
        if successes == 0
        else float(beta.ppf(alpha / 2.0, successes, n - successes + 1))
    )
    hi = (
        1.0
        if successes == n
        else float(beta.ppf(1.0 - alpha / 2.0, successes + 1, n - successes))
    )
    return Interval(
        estimate=successes / n,
        lo=lo,
        hi=hi,
        confidence=confidence,
        n=n,
        method="clopper-pearson",
    )


def hoeffding(
    mean: float,
    n: int,
    confidence: float = 0.95,
    bounds: Sequence[float] = (0.0, 1.0),
) -> Interval:
    """Hoeffding interval for the mean of a ``bounds``-bounded variable.

    Distribution-free: only boundedness is assumed, so the guarantee
    holds for any dependence-free sample of e.g. per-run failure
    fractions.  Half-width is ``(b - a) * sqrt(ln(2/alpha) / (2n))``.
    """
    confidence = _check_confidence(confidence)
    if n < 1:
        raise ConfigError("sample size must be at least 1", n=n)
    a, b = float(bounds[0]), float(bounds[1])
    if not (math.isfinite(a) and math.isfinite(b)) or a >= b:
        raise ConfigError("bounds must be finite with a < b", a=a, b=b)
    if not a <= mean <= b:
        raise ConfigError(
            "mean must lie within its bounds", mean=mean, a=a, b=b
        )
    alpha = 1.0 - confidence
    half = (b - a) * math.sqrt(math.log(2.0 / alpha) / (2.0 * n))
    return Interval(
        estimate=float(mean),
        lo=max(a, mean - half),
        hi=min(b, mean + half),
        confidence=confidence,
        n=n,
        method="hoeffding",
    )


def dkw_epsilon(n: int, confidence: float = 0.95) -> float:
    """DKW uniform CDF band half-width ``sqrt(ln(2/alpha) / (2n))``."""
    _check_confidence(confidence)
    if n < 1:
        raise ConfigError("sample size must be at least 1", n=n)
    alpha = 1.0 - confidence
    return math.sqrt(math.log(2.0 / alpha) / (2.0 * n))


def dkw_quantile(
    samples: Sequence[float], q: float, confidence: float = 0.95
) -> Interval:
    """DKW confidence band for the ``q``-quantile of a sample.

    The empirical CDF is within ``eps`` of the truth everywhere with
    probability ``>= confidence`` (DKW with Massart's constant), so the
    order statistics at ranks ``ceil(n*(q - eps))`` and
    ``ceil(n*(q + eps))`` bracket the true quantile.  When a rank falls
    off the end of the sample the bound is truncated at the sample
    extreme: the interval is then one-sided - honest coverage requires
    ``n > ln(2/alpha) / (2 * min(q, 1-q)^2)``, which for p99 at 95 %
    confidence is roughly 18 500 samples (tail quantiles are expensive;
    this is a property of the guarantee, not of the implementation).
    """
    confidence = _check_confidence(confidence)
    if not 0.0 < q < 1.0:
        raise ConfigError("quantile must lie strictly inside (0, 1)", q=q)
    values = np.asarray(sorted(float(s) for s in samples))
    n = values.size
    if n < 1:
        raise ConfigError("sample size must be at least 1", n=n)
    if not np.isfinite(values).all():
        raise ConfigError("samples must be finite", n=n)
    eps = dkw_epsilon(n, confidence)
    # Empirical q-quantile: the smallest order statistic whose ECDF
    # value reaches q (rank ceil(n*q), 1-based).
    point = float(values[min(n - 1, max(0, math.ceil(n * q) - 1))])
    lo_rank = math.ceil(n * (q - eps))
    hi_rank = math.ceil(n * (q + eps))
    lo = float(values[lo_rank - 1]) if lo_rank >= 1 else float(values[0])
    hi = float(values[hi_rank - 1]) if hi_rank <= n else float(values[-1])
    return Interval(
        estimate=point,
        lo=lo,
        hi=hi,
        confidence=confidence,
        n=n,
        method="dkw",
    )
