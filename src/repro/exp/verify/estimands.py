"""Estimand adapters: one seeded model run -> one i.i.d. sample.

An *estimand* is the quantity a verification run is about.  Each
adapter owns (a) the model configuration that defines the quantity, (b)
a ``sample(seed)`` method drawing one independent replicate, and (c) a
canonical JSON ``spec()`` so a replica cell can reconstruct the
estimand inside a spawned worker or after a resume.  Three ship
built-in:

* :class:`PdnEmergencyEstimand` - P(voltage emergency in one scheduling
  epoch) of a 2x2 power domain under random occupancy/activity, via the
  fitted :mod:`repro.pdn.fast` peak-PSN kernels.  Also exposes the
  state/level/perturb surface the importance splitter needs, plus a
  vectorised ``direct_levels`` path for exhaustive reference runs.
* :class:`FaultSurvivalEstimand` - per-run app-failure fraction of one
  framework under a seeded fault campaign at a given intensity (a
  bounded mean in [0, 1]; pairs with the Hoeffding interval).
* :class:`PacketLatencyEstimand` - one uniformly chosen delivered-packet
  latency from a seeded :class:`~repro.noc.engine.ArrayNocEngine` run
  (i.i.d. by construction, so the DKW quantile band applies cleanly).
  Context-free policies also expose ``sample_batch``, which advances a
  whole batch of replicas as lanes of one
  :class:`~repro.noc.batch.BatchedNocEngine` pass with byte-identical
  values.

Sub-streams inside one replica (workload vs campaign vs simulator, or
traffic vs pick) are split with :func:`repro.harness.seeding.derive_seed`
so no two purposes ever share randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.harness.errors import ConfigError, SolverError
from repro.harness.seeding import derive_seed
from repro.pdn.emergencies import VE_THRESHOLD_PCT

#: Estimand kinds and the interval family each one pairs with.
KIND_PROBABILITY = "probability"  # Bernoulli -> Wilson / Clopper-Pearson
KIND_MEAN = "mean"  # bounded mean  -> Hoeffding
KIND_QUANTILE = "quantile"  # sample values -> DKW band


def _require_unit(value: float, name: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must lie in [0, 1]", **{name: value})
    return float(value)


@dataclass(frozen=True)
class PdnEmergencyEstimand:
    """P(voltage emergency per epoch) of one random 2x2 domain epoch.

    One replicate models one scheduling epoch of one power domain: each
    of the four tiles is independently occupied with probability
    ``occupancy``; an occupied tile draws a core activity factor and a
    router flit rate uniformly from their ranges, a dark tile is power
    gated (zero current, LOW bin).  Peak PSN is evaluated with the
    fitted kernel ladder at ``vdd`` and the epoch counts as an
    emergency when the worst tile exceeds ``threshold_pct``.

    The per-``vdd`` power coefficients are linear in activity and flit
    rate (see :class:`repro.chip.power.PowerModel`), so they are
    extracted once from the model and the whole evaluation vectorises -
    ``direct_levels`` sweeps millions of epochs for exhaustive
    reference estimates, and the importance splitter reuses the same
    path one state at a time.

    Attributes:
        vdd: Domain supply voltage (the ladder's top level by default -
            relative PSN grows with Vdd, Fig. 3a).
        threshold_pct: Emergency threshold in percent of Vdd.  Raising
            it above :data:`~repro.pdn.emergencies.VE_THRESHOLD_PCT`
            turns the event rare - the importance-splitting regime.
        occupancy: Per-tile probability of being active.
        activity_range: Uniform range of the core activity factor.
        high_bin_activity: Activity at or above this maps the tile to
            the HIGH interference bin.
        flit_range: Uniform range of the router flit rate (flits/cycle).
    """

    vdd: float = 0.8
    threshold_pct: float = VE_THRESHOLD_PCT
    occupancy: float = 0.35
    activity_range: Tuple[float, float] = (0.3, 1.0)
    high_bin_activity: float = 0.6
    flit_range: Tuple[float, float] = (0.0, 0.5)

    def __post_init__(self) -> None:
        _require_unit(self.occupancy, "occupancy")
        _require_unit(self.high_bin_activity, "high_bin_activity")
        if not 0.0 < self.vdd:
            raise ConfigError("vdd must be positive", vdd=self.vdd)
        if self.threshold_pct <= 0:
            raise ConfigError(
                "threshold_pct must be positive",
                threshold_pct=self.threshold_pct,
            )
        for name, (lo, hi) in (
            ("activity_range", self.activity_range),
            ("flit_range", self.flit_range),
        ):
            if not 0.0 <= lo <= hi:
                raise ConfigError(
                    f"{name} must satisfy 0 <= lo <= hi", lo=lo, hi=hi
                )

    # -- identity -------------------------------------------------------

    @property
    def name(self) -> str:
        return "ve"

    @property
    def kind(self) -> str:
        return KIND_PROBABILITY

    def spec(self) -> Dict[str, Any]:
        return {
            "estimand": self.name,
            "vdd": float(self.vdd),
            "threshold_pct": float(self.threshold_pct),
            "occupancy": float(self.occupancy),
            "activity_range": [float(v) for v in self.activity_range],
            "high_bin_activity": float(self.high_bin_activity),
            "flit_range": [float(v) for v in self.flit_range],
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "PdnEmergencyEstimand":
        return cls(
            vdd=float(spec["vdd"]),
            threshold_pct=float(spec["threshold_pct"]),
            occupancy=float(spec["occupancy"]),
            activity_range=tuple(
                float(v) for v in spec["activity_range"]
            ),
            high_bin_activity=float(spec["high_bin_activity"]),
            flit_range=tuple(float(v) for v in spec["flit_range"]),
        )

    # -- model plumbing -------------------------------------------------

    def _power_coeffs(self) -> Tuple[float, float, float, float, float]:
        """Linear power coefficients at ``vdd``, extracted once.

        ``PowerModel`` is linear in activity (dynamic core power) and in
        flit rate (dynamic router power), so five scalars reproduce it
        exactly: unit-activity core dynamic power, core leakage, idle
        router dynamic power, per-flit router slope, router leakage.
        """
        cached = self.__dict__.get("_coeffs")
        if cached is None:
            from repro.chip.cmp import default_chip

            power = default_chip().power_model
            core_dyn_unit = power.core_dynamic(1.0, self.vdd)
            core_leak = power.core_leakage(self.vdd)
            router_idle = power.router_dynamic(0.0, self.vdd)
            router_slope = power.router_dynamic(1.0, self.vdd) - router_idle
            router_leak = power.router_leakage(self.vdd)
            cached = (
                core_dyn_unit,
                core_leak,
                router_idle,
                router_slope,
                router_leak,
            )
            object.__setattr__(self, "_coeffs", cached)
        return cached

    def _kernel(self):
        cached = self.__dict__.get("_peak_kernel")
        if cached is None:
            from repro.pdn.fast import FastPsnModel

            cached = FastPsnModel().peak_kernels.kernel_for(self.vdd)
            object.__setattr__(self, "_peak_kernel", cached)
        return cached

    def _levels_of(
        self,
        occupied: np.ndarray,
        activity: np.ndarray,
        flits: np.ndarray,
    ) -> np.ndarray:
        """Peak domain PSN (percent of Vdd) per epoch row.

        Args:
            occupied: Shape (m, 4) booleans.
            activity: Shape (m, 4) activity factors (ignored when dark).
            flits: Shape (m, 4) router flit rates (ignored when dark).

        Returns:
            Shape (m,): worst-tile peak PSN of each epoch.
        """
        from repro.pdn.fast import BIN_INDEX
        from repro.pdn.waveforms import ActivityBin

        core_unit, core_leak, r_idle, r_slope, r_leak = self._power_coeffs()
        occ = occupied.astype(float)
        core_w = occ * (activity * core_unit + core_leak)
        router_w = occ * (r_idle + flits * r_slope + r_leak)
        bins = np.where(
            occupied & (activity >= self.high_bin_activity),
            BIN_INDEX[ActivityBin.HIGH],
            BIN_INDEX[ActivityBin.LOW],
        )
        m = occupied.shape[0]
        psn = self._kernel().evaluate_batch(
            np.full(m, self.vdd),
            core_w / self.vdd,
            router_w / self.vdd,
            bins,
        )
        return psn.max(axis=1)

    # -- sampling surface -----------------------------------------------

    def sample_state(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        """Draw one epoch state (the splitter's prior sample)."""
        a_lo, a_hi = self.activity_range
        f_lo, f_hi = self.flit_range
        return {
            "occupied": rng.random(4) < self.occupancy,
            "activity": rng.uniform(a_lo, a_hi, 4),
            "flits": rng.uniform(f_lo, f_hi, 4),
        }

    def level(self, state: Dict[str, np.ndarray]) -> float:
        """Importance level of a state: its peak PSN in percent."""
        return float(
            self._levels_of(
                state["occupied"][None, :],
                state["activity"][None, :],
                state["flits"][None, :],
            )[0]
        )

    def perturb(
        self, state: Dict[str, np.ndarray], rng: np.random.Generator
    ) -> Dict[str, np.ndarray]:
        """Propose an MCMC move: re-draw one tile from the prior.

        Resampling a single tile's (occupied, activity, flits) block
        from the prior is an independence proposal on that block, so
        the splitter's accept-iff-above-level rule is a valid
        Metropolis kernel for the level-conditioned distribution.
        """
        a_lo, a_hi = self.activity_range
        f_lo, f_hi = self.flit_range
        tile = int(rng.integers(4))
        out = {k: v.copy() for k, v in state.items()}
        out["occupied"][tile] = rng.random() < self.occupancy
        out["activity"][tile] = rng.uniform(a_lo, a_hi)
        out["flits"][tile] = rng.uniform(f_lo, f_hi)
        return out

    def direct_levels(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` i.i.d. epoch levels, fully vectorised (reference path)."""
        if n < 1:
            raise ConfigError("n must be at least 1", n=n)
        a_lo, a_hi = self.activity_range
        f_lo, f_hi = self.flit_range
        return self._levels_of(
            rng.random((n, 4)) < self.occupancy,
            rng.uniform(a_lo, a_hi, (n, 4)),
            rng.uniform(f_lo, f_hi, (n, 4)),
        )

    def sample(self, seed: int) -> float:
        """One Bernoulli replicate: 1.0 iff the epoch is an emergency."""
        rng = np.random.default_rng(seed)
        return float(self.level(self.sample_state(rng)) > self.threshold_pct)


@dataclass(frozen=True)
class FaultSurvivalEstimand:
    """Per-run app-failure fraction under a seeded fault campaign.

    One replicate runs one framework over one generated workload with
    one sampled :class:`~repro.faults.FaultCampaign` at ``intensity``
    and returns the fraction of applications that did *not* complete
    (dropped or failed) - a bounded mean in [0, 1], estimated with the
    Hoeffding interval.  Mirrors one (framework, intensity, seed) cell
    of :func:`repro.exp.faults.fault_sweep`, with replica sub-streams
    split via :func:`~repro.harness.seeding.derive_seed`.
    """

    framework: str = "PARM+PANR"
    intensity: float = 1.0
    workload: str = "mixed"
    arrival_interval_s: float = 0.1
    n_apps: int = 6

    def __post_init__(self) -> None:
        _require_unit(self.intensity, "intensity")
        if self.n_apps <= 0:
            raise ConfigError("n_apps must be positive", n_apps=self.n_apps)
        if self.arrival_interval_s <= 0:
            raise ConfigError(
                "arrival_interval_s must be positive",
                arrival_interval_s=self.arrival_interval_s,
            )

    @property
    def name(self) -> str:
        return "fault"

    @property
    def kind(self) -> str:
        return KIND_MEAN

    def spec(self) -> Dict[str, Any]:
        return {
            "estimand": self.name,
            "framework": self.framework,
            "intensity": float(self.intensity),
            "workload": self.workload,
            "arrival_interval_s": float(self.arrival_interval_s),
            "n_apps": int(self.n_apps),
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "FaultSurvivalEstimand":
        return cls(
            framework=str(spec["framework"]),
            intensity=float(spec["intensity"]),
            workload=str(spec["workload"]),
            arrival_interval_s=float(spec["arrival_interval_s"]),
            n_apps=int(spec["n_apps"]),
        )

    def _environment(self):
        """Chip / profile library / framework, built once per process."""
        cached = self.__dict__.get("_env")
        if cached is None:
            from repro.apps.suite import ProfileLibrary
            from repro.chip.cmp import default_chip
            from repro.exp.frameworks import framework as fw_lookup

            cached = (default_chip(), ProfileLibrary(), fw_lookup(self.framework))
            object.__setattr__(self, "_env", cached)
        return cached

    def sample(self, seed: int) -> float:
        """One replicate: the run's app-failure fraction in [0, 1]."""
        from repro.apps.workload import WorkloadType, generate_workload
        from repro.exp.faults import SWEEP_FAULT_RATES
        from repro.faults import FaultCampaign
        from repro.runtime.simulator import RuntimeSimulator

        chip, library, fw = self._environment()
        workload = generate_workload(
            WorkloadType(self.workload),
            self.arrival_interval_s,
            n_apps=self.n_apps,
            seed=derive_seed(seed, "verify/fault/workload", 0),
            library=library,
        )
        horizon_s = self.n_apps * self.arrival_interval_s + 5.0
        campaign = FaultCampaign.sample(
            chip,
            horizon_s,
            np.random.default_rng(
                derive_seed(seed, "verify/fault/campaign", 0)
            ),
            rates=SWEEP_FAULT_RATES,
            intensity=self.intensity,
        )
        sim = RuntimeSimulator(
            chip,
            fw.make_manager(),
            fw.make_routing(),
            faults=campaign,
            seed=derive_seed(seed, "verify/fault/sim", 0),
        )
        metrics = sim.run(workload)
        return 1.0 - metrics.completed_count / self.n_apps


@dataclass(frozen=True)
class PacketLatencyEstimand:
    """One delivered-packet latency from a seeded NoC engine run.

    Each replicate simulates the routing-sweep setting (hotspot PSN
    band, uniform-random traffic) with its own traffic/engine seed and
    returns the latency of ONE uniformly chosen delivered packet.
    Latencies within a run are dependent (shared congestion), so taking
    a single packet per run is what makes the sample i.i.d. and the DKW
    quantile band honest - at the cost of one engine run per sample,
    which is why tail quantiles are expensive (see
    :func:`repro.exp.verify.intervals.dkw_quantile`).
    """

    policy: str = "panr"
    injection_rate_flits: float = 0.25
    quantile: float = 0.99
    mesh_width: int = 8
    mesh_height: int = 8
    cycles: int = 2000
    packet_size_flits: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ConfigError(
                "quantile must lie strictly inside (0, 1)",
                quantile=self.quantile,
            )
        if self.injection_rate_flits <= 0:
            raise ConfigError(
                "injection_rate_flits must be positive",
                injection_rate_flits=self.injection_rate_flits,
            )
        if self.cycles <= 0:
            raise ConfigError("cycles must be positive", cycles=self.cycles)

    @property
    def name(self) -> str:
        return "latency"

    @property
    def kind(self) -> str:
        return KIND_QUANTILE

    def spec(self) -> Dict[str, Any]:
        return {
            "estimand": self.name,
            "policy": self.policy,
            "injection_rate_flits": float(self.injection_rate_flits),
            "quantile": float(self.quantile),
            "mesh_width": int(self.mesh_width),
            "mesh_height": int(self.mesh_height),
            "cycles": int(self.cycles),
            "packet_size_flits": int(self.packet_size_flits),
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "PacketLatencyEstimand":
        return cls(
            policy=str(spec["policy"]),
            injection_rate_flits=float(spec["injection_rate_flits"]),
            quantile=float(spec["quantile"]),
            mesh_width=int(spec["mesh_width"]),
            mesh_height=int(spec["mesh_height"]),
            cycles=int(spec["cycles"]),
            packet_size_flits=int(spec["packet_size_flits"]),
        )

    def _pick_latency(self, seed: int, stats: Any) -> float:
        """Uniformly pick one delivered-packet latency of one run."""
        if not stats.packet_latencies:
            raise SolverError(
                "NoC run delivered no packets; cannot sample a latency",
                policy=self.policy,
                injection_rate_flits=self.injection_rate_flits,
                cycles=self.cycles,
            )
        pick = np.random.default_rng(
            derive_seed(seed, "verify/latency/pick", 0)
        )
        return float(
            stats.packet_latencies[int(pick.integers(len(stats.packet_latencies)))]
        )

    def sample(self, seed: int) -> float:
        """One replicate: one uniformly chosen delivered-packet latency."""
        from repro.chip.mesh import MeshGeometry
        from repro.exp.routing_sweep import hotspot_psn, uniform_random_flows
        from repro.noc.engine import ArrayNocEngine
        from repro.noc.routing import make_routing

        mesh = MeshGeometry(self.mesh_width, self.mesh_height)
        traffic_seed = derive_seed(seed, "verify/latency/traffic", 0)
        flows = uniform_random_flows(
            mesh,
            self.injection_rate_flits,
            traffic_seed,
            self.packet_size_flits,
        )
        engine = ArrayNocEngine(
            mesh,
            make_routing(self.policy),
            psn_pct=hotspot_psn(mesh),
            seed=traffic_seed,
        )
        return self._pick_latency(seed, engine.run(flows, self.cycles))

    def sample_batch(self, seeds: Sequence[int]) -> List[float]:
        """Replicates for many seeds in one batched engine pass.

        Byte-identical to ``[self.sample(s) for s in seeds]``: every
        replica keeps its own derived traffic/pick sub-streams, and for
        context-free policies the replicas advance as lanes of one
        :class:`~repro.noc.batch.BatchedNocEngine` (each lane pinned
        flit-for-flit against the scalar engine).  Adaptive policies
        fall back to the scalar per-seed path.
        """
        from repro.chip.mesh import MeshGeometry
        from repro.exp.routing_sweep import hotspot_psn, uniform_random_flows
        from repro.noc.batch import BatchedNocEngine
        from repro.noc.routing import make_routing

        seeds = list(seeds)
        if not seeds:
            return []
        routing = make_routing(self.policy)
        if not routing.context_free:
            return [self.sample(seed) for seed in seeds]
        mesh = MeshGeometry(self.mesh_width, self.mesh_height)
        traffic_seeds = [
            derive_seed(seed, "verify/latency/traffic", 0) for seed in seeds
        ]
        flows = [
            uniform_random_flows(
                mesh,
                self.injection_rate_flits,
                traffic_seed,
                self.packet_size_flits,
            )
            for traffic_seed in traffic_seeds
        ]
        engine = BatchedNocEngine(
            mesh,
            routing,
            n_lanes=len(seeds),
            psn_pct=hotspot_psn(mesh),
            seeds=traffic_seeds,
        )
        stats_list = engine.run(flows, self.cycles)
        return [
            self._pick_latency(seed, stats)
            for seed, stats in zip(seeds, stats_list)
        ]


#: Registered estimand factories, keyed by spec ``"estimand"`` value.
_REGISTRY: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "ve": PdnEmergencyEstimand.from_spec,
    "fault": FaultSurvivalEstimand.from_spec,
    "latency": PacketLatencyEstimand.from_spec,
}


def register_estimand(
    name: str, factory: Callable[[Dict[str, Any]], Any]
) -> None:
    """Register a custom estimand factory (tests, extensions).

    Registration is per-process: spawned pool workers import modules
    fresh, so custom estimands either register at import time of a
    module the worker loads, or run with ``workers=1``.
    """
    _REGISTRY[name] = factory


def estimand_from_spec(spec: Dict[str, Any]) -> Any:
    """Reconstruct an estimand from its canonical JSON spec."""
    kind = spec.get("estimand")
    factory = _REGISTRY.get(str(kind))
    if factory is None:
        raise ConfigError(
            "unknown estimand", estimand=kind, known=tuple(sorted(_REGISTRY))
        )
    return factory(spec)
