"""Stop-when-confident sequential estimation over supervised replicas.

The :class:`SequentialEstimator` draws seeded replicas of an estimand
in batches, recomputes the confidence interval after each batch, and
stops as soon as the interval half-width reaches the target at the
requested confidence - or when a hard replica budget runs out.  The
loop is deterministic end to end:

* replica ``i`` always gets the seed
  ``derive_seed(root, "verify/<name>/replica", i)`` - batch-size
  invariant, so resuming with any batch size re-derives exactly the
  seeds already run;
* each replica is a :class:`ReplicaCell` - a
  :class:`~repro.harness.supervisor.SupervisedCell` - so batches ride
  the existing :class:`~repro.harness.supervisor.CampaignSupervisor`
  machinery verbatim: content-hashed identity, checksummed atomic
  checkpoints, retry/watchdog taxonomy, process-pool fan-out.  All
  batches share one checkpoint file (the supervisor persists its whole
  state map), so a SIGKILL at any instant loses at most the replicas in
  flight and a resumed invocation emits byte-identical JSON;
* the result serialisation carries no wall-clock data.

A note on the stopping rule: stopping when a *random* interval first
becomes narrow is not the same guarantee as a fixed-``n`` interval
(optional stopping inflates error slightly).  The rule here is the
standard SMC practice - the half-width criterion plus a
``min_replicas`` floor so a lucky early batch cannot stop the run -
and the empirical-coverage test in ``tests/exp/test_verify_intervals.py``
checks the realised coverage stays near nominal.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exp.verify.estimands import (
    KIND_MEAN,
    KIND_PROBABILITY,
    KIND_QUANTILE,
    estimand_from_spec,
)
from repro.exp.verify.intervals import (
    Interval,
    clopper_pearson,
    dkw_quantile,
    hoeffding,
    wilson,
)
from repro.harness.errors import ConfigError, ReproError
from repro.harness.seeding import derive_seeds
from repro.harness.supervisor import (
    CampaignSupervisor,
    CellExecutor,
    CellOutcome,
    SupervisorPolicy,
)

#: Schema tag hashed into replica-cell keys (distinct from campaign
#: cells so the two can never collide in a shared checkpoint).
REPLICA_SCHEMA = "parm-verify-replica"

#: Schema/version of the verification result JSON.
VERIFY_SCHEMA = "parm-verify"
VERIFY_VERSION = 1

#: Interval methods per estimand kind (first entry is the default).
_METHODS = {
    KIND_PROBABILITY: ("wilson", "clopper-pearson"),
    KIND_MEAN: ("hoeffding",),
    KIND_QUANTILE: ("dkw",),
}


def canonical_spec_json(spec: Dict[str, Any]) -> str:
    """Canonical encoding of an estimand spec (cell identity input)."""
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ReplicaCell:
    """One replica draw as a supervised campaign cell.

    Attributes:
        estimand_json: Canonical JSON spec of the estimand (a string so
            the cell stays hashable and byte-stable).
        index: Replica index within the estimand's seed stream.
        seed: The derived 64-bit replica seed (recorded explicitly so a
            checkpoint is self-describing).
    """

    estimand_json: str
    index: int
    seed: int

    def validate(self) -> None:
        """Raise :class:`ConfigError` unless the replica can run."""
        estimand_from_spec(json.loads(self.estimand_json))
        if self.index < 0:
            raise ConfigError(
                "replica index must be non-negative", index=self.index
            )

    def spec(self) -> Dict[str, Any]:
        """Canonical JSON spec (the input to the content hash)."""
        return {
            "estimand": json.loads(self.estimand_json),
            "index": int(self.index),
            "seed": int(self.seed),
        }

    @property
    def key(self) -> str:
        """Content-hashed replica identity (stable across processes)."""
        canonical = json.dumps(
            {"schema": REPLICA_SCHEMA, "spec": self.spec()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @property
    def label(self) -> str:
        name = json.loads(self.estimand_json).get("estimand", "?")
        return f"verify/{name}#{self.index}"


#: Per-process estimand cache: spawned workers rebuild the estimand
#: once from its spec and reuse it (and its cached model state) for
#: every replica they receive.
_ESTIMAND_CACHE: Dict[str, Any] = {}

#: In-process batch-sample cache, keyed by ``(estimand_json, seed)``.
#: Filled only by :meth:`SequentialEstimator._prime_batch` in the
#: serial no-checkpoint path, where every cell is guaranteed to run in
#: this process: estimands with a ``sample_batch`` fast path (e.g. the
#: batched NoC engine behind :class:`PacketLatencyEstimand`) compute a
#: whole batch's values in one pass and the per-cell runner just looks
#: them up.  The cached values are pinned byte-identical to
#: ``sample(seed)``, so cells hitting or missing the cache cannot
#: diverge.  Never written from worker processes.
_BATCH_VALUE_CACHE: Dict[Tuple[str, int], float] = {}


def run_replica_cell(cell: ReplicaCell) -> Dict[str, Any]:
    """Module-level cell runner: one ``estimand.sample(seed)`` call."""
    primed = _BATCH_VALUE_CACHE.get((cell.estimand_json, cell.seed))
    if primed is not None:
        return {
            "index": int(cell.index),
            "seed": int(cell.seed),
            "value": float(primed),
        }
    estimand = _ESTIMAND_CACHE.get(cell.estimand_json)
    if estimand is None:
        estimand = estimand_from_spec(json.loads(cell.estimand_json))
        # Deterministic per-process memo: the cached value is a pure
        # function of the cell's spec JSON (content-hashed into the
        # cell key), so every worker computes the identical entry and
        # results cannot depend on which worker ran which replica.
        # parmlint: ok[worker-safety] - deterministic per-process memo
        _ESTIMAND_CACHE[cell.estimand_json] = estimand
    return {
        "index": int(cell.index),
        "seed": int(cell.seed),
        "value": float(estimand.sample(cell.seed)),
    }


@dataclass(frozen=True)
class StopRule:
    """When the sequential loop may stop.

    Attributes:
        confidence: Two-sided confidence level of the interval.
        half_width: Target interval half-width (probability/mean units,
            or latency cycles for quantile estimands).
        budget: Hard replica cap; the loop never draws more.
        batch_size: Replicas per supervised batch.
        min_replicas: Floor before the half-width criterion may fire,
            so a lucky first batch cannot end the run.
    """

    confidence: float = 0.95
    half_width: float = 0.02
    budget: int = 4096
    batch_size: int = 64
    min_replicas: int = 32

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence < 1.0:
            raise ConfigError(
                "confidence must lie strictly inside (0, 1)",
                confidence=self.confidence,
            )
        if self.half_width <= 0:
            raise ConfigError(
                "half_width must be positive", half_width=self.half_width
            )
        if self.budget < 1 or self.batch_size < 1 or self.min_replicas < 1:
            raise ConfigError(
                "budget, batch_size and min_replicas must be positive",
                budget=self.budget,
                batch_size=self.batch_size,
                min_replicas=self.min_replicas,
            )

    def to_json(self) -> Dict[str, Any]:
        return {
            "confidence": float(self.confidence),
            "half_width": float(self.half_width),
            "budget": int(self.budget),
            "batch_size": int(self.batch_size),
            "min_replicas": int(self.min_replicas),
        }


@dataclass(frozen=True)
class VerifyResult:
    """Outcome of one sequential estimation run.

    ``to_json`` is deterministic (sorted keys, no wall clock), so an
    interrupted-and-resumed run serialises byte-identically to an
    uninterrupted one.
    """

    estimand_spec: Dict[str, Any]
    method: str
    rule: StopRule
    root_seed: int
    interval: Interval
    n_replicas: int
    batches: int
    stopped_early: bool
    values_mean: float

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": VERIFY_SCHEMA,
            "version": VERIFY_VERSION,
            "estimand": self.estimand_spec,
            "method": self.method,
            "rule": self.rule.to_json(),
            "root_seed": int(self.root_seed),
            "interval": self.interval.to_json(),
            "n_replicas": int(self.n_replicas),
            "batches": int(self.batches),
            "stopped_early": bool(self.stopped_early),
            "values_mean": float(self.values_mean),
        }

    def json_str(self) -> str:
        """Canonical serialisation (byte-stable across resumes)."""
        return json.dumps(self.to_json(), sort_keys=True, indent=2) + "\n"


class SequentialEstimator:
    """Draws replicas in supervised batches until confident.

    Args:
        estimand: Any estimand adapter (see
            :mod:`repro.exp.verify.estimands`) - must expose ``name``,
            ``kind``, ``spec()`` and ``sample(seed)``.
        rule: Stop rule (confidence, target half-width, budget).
        root_seed: Root of the replica seed stream.
        method: Interval estimator; ``None`` picks the kind's default
            (Wilson for probabilities, Hoeffding for bounded means, DKW
            for quantiles).
        checkpoint_path: Optional crash-safe checkpoint shared by all
            batches.  ``None`` runs without persistence.
        workers: Process-pool width for each batch (``1`` = serial).
        policy: Retry/watchdog policy for replica cells.
    """

    def __init__(
        self,
        estimand: Any,
        rule: Optional[StopRule] = None,
        root_seed: int = 0,
        method: Optional[str] = None,
        checkpoint_path: Optional[str] = None,
        workers: int = 1,
        policy: Optional[SupervisorPolicy] = None,
    ) -> None:
        self._estimand = estimand
        self._rule = rule or StopRule()
        self._root_seed = int(root_seed)
        kind = estimand.kind
        allowed = _METHODS.get(kind)
        if allowed is None:
            raise ConfigError("unknown estimand kind", kind=kind)
        self._method = method or allowed[0]
        if self._method not in allowed:
            raise ConfigError(
                "interval method incompatible with estimand kind",
                method=self._method,
                kind=kind,
                allowed=allowed,
            )
        self._checkpoint_path = checkpoint_path
        self._workers = int(workers)
        self._policy = policy or SupervisorPolicy()
        self._spec = estimand.spec()
        self._spec_json = canonical_spec_json(self._spec)
        self._label = f"verify/{estimand.name}/replica"

    # ------------------------------------------------------------------

    def run(self, resume: bool = False) -> VerifyResult:
        """Run (or resume) the sequential loop to a stop decision.

        Raises:
            ReproError: when a replica exhausts its retry budget - a
                silent gap in the seed stream would bias the estimate,
                so the run aborts with the failure's provenance instead.
        """
        rule = self._rule
        values: List[float] = []
        batches = 0
        interval: Optional[Interval] = None
        stopped_early = False
        while len(values) < rule.budget:
            start = len(values)
            size = min(rule.batch_size, rule.budget - start)
            seeds = derive_seeds(
                self._root_seed, self._label, size, start=start
            )
            cells = [
                ReplicaCell(self._spec_json, start + i, seeds[i])
                for i in range(size)
            ]
            # Later batches always resume: they share the checkpoint
            # with every batch before them.
            values.extend(
                self._run_batch(cells, resume=resume or batches > 0)
            )
            batches += 1
            interval = self._interval(values)
            if (
                len(values) >= rule.min_replicas
                and interval.half_width <= rule.half_width
            ):
                stopped_early = len(values) < rule.budget
                break
        assert interval is not None  # budget >= 1 guarantees one batch
        mean = sum(values) / len(values)
        return VerifyResult(
            estimand_spec=self._spec,
            method=self._method,
            rule=rule,
            root_seed=self._root_seed,
            interval=interval,
            n_replicas=len(values),
            batches=batches,
            stopped_early=stopped_early,
            values_mean=mean,
        )

    # ------------------------------------------------------------------

    def _run_batch(
        self, cells: Sequence[ReplicaCell], resume: bool
    ) -> List[float]:
        outcomes = self._execute(cells, resume)
        failed = [o for o in outcomes if not o.completed]
        if failed:
            first = failed[0]
            last_attempt = first.attempts[-1] if first.attempts else None
            raise ReproError(
                "replica failed; a gap in the seed stream would bias "
                "the estimate",
                cell=first.cell.label,
                key=first.cell.key,
                failed=len(failed),
                error_type=(
                    last_attempt.error_type if last_attempt else "unknown"
                ),
                error=(
                    last_attempt.error_message if last_attempt else ""
                ),
            )
        return [float(o.result["value"]) for o in outcomes]

    def _prime_batch(self, cells: Sequence[ReplicaCell]) -> None:
        """Precompute a batch's replica values in one ``sample_batch``.

        Only used on the serial in-process path without a checkpoint,
        where every cell is certain to execute here (a checkpointed or
        pooled run may skip or ship cells, and priming them would waste
        the batched pass).  Failures fall back silently to the scalar
        per-cell path, which re-raises with full cell provenance.
        """
        sample_batch = getattr(self._estimand, "sample_batch", None)
        if sample_batch is None:
            return
        _BATCH_VALUE_CACHE.clear()
        try:
            values = sample_batch([cell.seed for cell in cells])
        except ReproError:
            return
        for cell, value in zip(cells, values):
            _BATCH_VALUE_CACHE[(cell.estimand_json, cell.seed)] = float(
                value
            )

    def _execute(
        self, cells: Sequence[ReplicaCell], resume: bool
    ) -> Tuple[CellOutcome, ...]:
        if self._checkpoint_path is None and self._workers == 1:
            self._prime_batch(cells)
        if self._checkpoint_path is not None:
            supervisor = CampaignSupervisor(
                cells,
                self._checkpoint_path,
                policy=self._policy,
                cell_runner=run_replica_cell,
                workers=self._workers,
            )
            # retry_failed: a replica that failed before the crash gets
            # a fresh budget on resume instead of poisoning the run.
            return supervisor.run(
                resume=resume, retry_failed=True
            ).outcomes
        if self._workers > 1 and len(cells) > 1:
            from repro.perf.parallel import run_cells

            return tuple(
                run_cells(
                    cells,
                    self._policy,
                    workers=self._workers,
                    cell_runner=run_replica_cell,
                )
            )
        executor = CellExecutor(self._policy, cell_runner=run_replica_cell)
        return tuple(executor.run_cell(cell) for cell in cells)

    def _interval(self, values: Sequence[float]) -> Interval:
        rule = self._rule
        n = len(values)
        if self._method == "wilson" or self._method == "clopper-pearson":
            successes = int(round(sum(values)))
            fn = wilson if self._method == "wilson" else clopper_pearson
            return fn(successes, n, confidence=rule.confidence)
        if self._method == "hoeffding":
            return hoeffding(
                sum(values) / n, n, confidence=rule.confidence
            )
        q = float(getattr(self._estimand, "quantile", 0.5))
        return dkw_quantile(values, q, confidence=rule.confidence)
