"""Multilevel importance splitting for rare voltage-emergency events.

Direct Monte Carlo needs on the order of ``100 / p`` replicas to pin a
probability ``p`` - hopeless at the ``1e-5`` emergency probabilities a
well-guardbanded configuration should have.  Subset simulation (Au &
Beck's adaptive multilevel splitting) factors the rare event into a
product of conditional probabilities that are each cheap to estimate:

1. draw ``n_per_level`` states from the prior and score each with the
   estimand's *level* function (peak PSN percent here - proximity to
   the emergency band);
2. set the next intermediate level ``L`` at the ``(1 - rho)`` quantile
   of the scores, so a fraction ``~rho`` survives;
3. clone the survivors back up to ``n_per_level`` and decorrelate each
   clone with a few Metropolis moves (the estimand proposes a
   prior-resample of one block; accepting iff the proposal stays at or
   above ``L`` is the correct kernel for independence proposals, since
   the prior densities cancel);
4. repeat until the intermediate level reaches the target threshold;
   the estimate is the product of the per-stage survival fractions.

Everything is seeded deterministically: stage ``k`` draws its RNG from
``derive_seed(root, "verify/<name>/split", k)``, so a rerun reproduces
the estimate bit for bit.

The reported ``relative_std`` is the independence approximation
``sqrt(sum_i (1 - p_i) / (p_i * n))`` - a *lower bound* on the true
relative error, since MCMC correlation between clones inflates it.  It
is reported so the splitting estimate is never mistaken for an exact
interval; treat it as an order-of-magnitude error bar.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.harness.errors import ConfigError, SolverError
from repro.harness.seeding import derive_seed

#: Schema/version of the splitting result JSON.
SPLITTING_SCHEMA = "parm-verify-splitting"
SPLITTING_VERSION = 1


@dataclass(frozen=True)
class SplittingConfig:
    """Tuning knobs of the multilevel splitting run.

    Attributes:
        n_per_level: States carried at each stage.
        survivor_fraction: Target per-stage survival fraction (rho).
        mcmc_moves: Metropolis moves per clone per stage.
        max_levels: Abort bound on the number of stages.
    """

    n_per_level: int = 1000
    survivor_fraction: float = 0.1
    mcmc_moves: int = 3
    max_levels: int = 25

    def __post_init__(self) -> None:
        if self.n_per_level < 10:
            raise ConfigError(
                "n_per_level must be at least 10",
                n_per_level=self.n_per_level,
            )
        if not 0.0 < self.survivor_fraction < 1.0:
            raise ConfigError(
                "survivor_fraction must lie strictly inside (0, 1)",
                survivor_fraction=self.survivor_fraction,
            )
        if self.mcmc_moves < 1 or self.max_levels < 1:
            raise ConfigError(
                "mcmc_moves and max_levels must be positive",
                mcmc_moves=self.mcmc_moves,
                max_levels=self.max_levels,
            )


@dataclass(frozen=True)
class SplittingResult:
    """Outcome of one splitting run."""

    estimand_spec: Dict[str, Any]
    threshold: float
    probability: float
    levels: Tuple[float, ...]
    level_probabilities: Tuple[float, ...]
    n_evaluations: int
    relative_std: float
    root_seed: int
    n_per_level: int

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": SPLITTING_SCHEMA,
            "version": SPLITTING_VERSION,
            "estimand": self.estimand_spec,
            "threshold": float(self.threshold),
            "probability": float(self.probability),
            "levels": [float(v) for v in self.levels],
            "level_probabilities": [
                float(v) for v in self.level_probabilities
            ],
            "n_evaluations": int(self.n_evaluations),
            "relative_std": float(self.relative_std),
            "root_seed": int(self.root_seed),
            "n_per_level": int(self.n_per_level),
        }

    def json_str(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True, indent=2) + "\n"


def run_splitting(
    estimand: Any,
    threshold: Optional[float] = None,
    config: Optional[SplittingConfig] = None,
    root_seed: int = 0,
) -> SplittingResult:
    """Estimate ``P(level > threshold)`` by adaptive multilevel splitting.

    Args:
        estimand: Must expose ``name``, ``spec()``, ``sample_state``,
            ``level`` and ``perturb`` (see
            :class:`~repro.exp.verify.estimands.PdnEmergencyEstimand`).
        threshold: Target level; defaults to the estimand's own
            ``threshold_pct``.
        config: Splitting knobs.
        root_seed: Root of the deterministic per-stage seed stream.

    Raises:
        ConfigError: on a missing/invalid threshold.
        SolverError: when the level sequence stalls before reaching the
            threshold (the proposal cannot push states any higher) or
            ``max_levels`` stages are exhausted.
    """
    config = config or SplittingConfig()
    if threshold is None:
        threshold = getattr(estimand, "threshold_pct", None)
    if threshold is None or not math.isfinite(float(threshold)):
        raise ConfigError(
            "splitting needs a finite target threshold", threshold=threshold
        )
    threshold = float(threshold)
    label = f"verify/{estimand.name}/split"
    n = config.n_per_level
    rho = config.survivor_fraction

    rng = np.random.default_rng(derive_seed(root_seed, label, 0))
    states = [estimand.sample_state(rng) for _ in range(n)]
    levels = np.array([estimand.level(s) for s in states], dtype=float)
    n_evaluations = n

    stage_levels: List[float] = []
    stage_ps: List[float] = []
    probability = 1.0
    previous_level = -math.inf
    for stage in range(config.max_levels):
        done_fraction = float(np.mean(levels > threshold))
        if done_fraction >= rho:
            # Final stage: enough mass is already beyond the target.
            stage_levels.append(threshold)
            stage_ps.append(done_fraction)
            probability *= done_fraction
            relative_var = sum(
                (1.0 - p) / (p * n) for p in stage_ps
            )
            return SplittingResult(
                estimand_spec=estimand.spec(),
                threshold=threshold,
                probability=probability,
                levels=tuple(stage_levels),
                level_probabilities=tuple(stage_ps),
                n_evaluations=n_evaluations,
                relative_std=math.sqrt(relative_var),
                root_seed=int(root_seed),
                n_per_level=n,
            )

        level = float(np.quantile(levels, 1.0 - rho))
        if level > threshold:
            level = threshold
        if level <= previous_level:
            raise SolverError(
                "splitting stalled: intermediate level stopped rising",
                stage=stage,
                level=level,
                threshold=threshold,
            )
        previous_level = level
        # Survivors use >= so the clone pool is never smaller than the
        # target fraction; the final stage above uses the strict > of
        # the emergency definition.
        survivors = np.flatnonzero(levels >= level)
        p_stage = float(survivors.size) / n
        if survivors.size == 0:
            raise SolverError(
                "splitting stalled: no survivors at intermediate level",
                stage=stage,
                level=level,
                threshold=threshold,
            )
        stage_levels.append(level)
        stage_ps.append(p_stage)
        probability *= p_stage

        # Clone survivors up to n and decorrelate with Metropolis moves
        # under one deterministic per-stage RNG.
        stage_rng = np.random.default_rng(
            derive_seed(root_seed, label, stage + 1)
        )
        clone_idx = np.resize(survivors, n)
        new_states = []
        new_levels = np.empty(n)
        for slot, idx in enumerate(clone_idx):
            state = states[int(idx)]
            value = float(levels[int(idx)])
            for _ in range(config.mcmc_moves):
                proposal = estimand.perturb(state, stage_rng)
                proposal_level = estimand.level(proposal)
                n_evaluations += 1
                if proposal_level >= level:
                    state, value = proposal, float(proposal_level)
            new_states.append(state)
            new_levels[slot] = value
        states = new_states
        levels = new_levels

    raise SolverError(
        "splitting exhausted max_levels before reaching the threshold",
        max_levels=config.max_levels,
        threshold=threshold,
        reached=float(previous_level),
    )
