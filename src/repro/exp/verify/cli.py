"""``python -m repro verify`` - confidence-bounded estimation runs.

Two modes:

* sequential (default): draw seeded replicas of the chosen estimand in
  supervised batches and stop when the interval half-width reaches the
  target at the requested confidence (or the budget runs out).
* ``--splitting``: multilevel importance splitting for rare
  voltage-emergency probabilities (``ve`` estimand only).

Examples::

    python -m repro verify --confidence 0.95 --half-width 0.02
    python -m repro verify --estimand latency --quantile 0.9 \
        --half-width 5 --budget 2000
    python -m repro verify --splitting --threshold-pct 19.5 \
        --json-out splitting.json

The JSON written by ``--json-out`` is canonical (sorted keys, no wall
clock): two identical invocations - including one resumed after a kill
via ``--checkpoint``/``--resume`` - produce byte-identical files.
"""

from __future__ import annotations

import argparse
from typing import Any, List, Optional

from repro.exp.verify.estimands import (
    FaultSurvivalEstimand,
    PacketLatencyEstimand,
    PdnEmergencyEstimand,
)
from repro.exp.verify.sequential import (
    SequentialEstimator,
    StopRule,
    VerifyResult,
)
from repro.exp.verify.splitting import (
    SplittingConfig,
    SplittingResult,
    run_splitting,
)
from repro.harness.errors import ConfigError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro verify",
        description=(
            "Confidence-bounded estimation of reliability quantities "
            "(stop-when-confident sequential sampling, or importance "
            "splitting for rare events)."
        ),
    )
    parser.add_argument(
        "--estimand",
        choices=("ve", "fault", "latency"),
        default="ve",
        help="quantity to estimate (default: P(voltage emergency))",
    )
    parser.add_argument(
        "--confidence", type=float, default=0.95,
        help="two-sided confidence level (default 0.95)",
    )
    parser.add_argument(
        "--half-width", type=float, default=0.02,
        help="target interval half-width (default 0.02)",
    )
    parser.add_argument(
        "--budget", type=int, default=4096,
        help="hard replica budget (default 4096)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=64,
        help="replicas per supervised batch (default 64)",
    )
    parser.add_argument(
        "--min-replicas", type=int, default=32,
        help="replica floor before stopping is allowed (default 32)",
    )
    parser.add_argument(
        "--method",
        choices=("wilson", "clopper-pearson", "hoeffding", "dkw"),
        default=None,
        help="interval estimator (default: the estimand kind's default)",
    )
    parser.add_argument(
        "--root-seed", type=int, default=0,
        help="root of the replica seed stream (default 0)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per batch (default 1 = serial)",
    )
    parser.add_argument(
        "--checkpoint", default=None,
        help="crash-safe checkpoint path shared by all batches",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="restore completed replicas from --checkpoint",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the canonical result JSON to this path",
    )
    # Splitting mode.
    parser.add_argument(
        "--splitting", action="store_true",
        help="rare-event importance splitting (ve estimand only)",
    )
    parser.add_argument(
        "--n-per-level", type=int, default=1000,
        help="splitting states per stage (default 1000)",
    )
    parser.add_argument(
        "--survivor-fraction", type=float, default=0.1,
        help="splitting per-stage survival fraction (default 0.1)",
    )
    parser.add_argument(
        "--mcmc-moves", type=int, default=3,
        help="splitting Metropolis moves per clone (default 3)",
    )
    # Estimand knobs.
    parser.add_argument(
        "--vdd", type=float, default=0.8,
        help="ve: domain supply voltage (default 0.8)",
    )
    parser.add_argument(
        "--occupancy", type=float, default=0.35,
        help="ve: per-tile occupancy probability (default 0.35)",
    )
    parser.add_argument(
        "--threshold-pct", type=float, default=None,
        help="ve: emergency threshold in %% of Vdd (default: paper's 5%%; "
        "raise it to make the event rare for --splitting)",
    )
    parser.add_argument(
        "--framework", default="PARM+PANR",
        help="fault: evaluation framework (default PARM+PANR)",
    )
    parser.add_argument(
        "--intensity", type=float, default=1.0,
        help="fault: campaign intensity in [0, 1] (default 1.0)",
    )
    parser.add_argument(
        "--n-apps", type=int, default=6,
        help="fault: applications per replica run (default 6)",
    )
    parser.add_argument(
        "--policy", default="panr",
        help="latency: routing policy (default panr)",
    )
    parser.add_argument(
        "--injection-rate", type=float, default=0.25,
        help="latency: offered load in flits/cycle/tile (default 0.25)",
    )
    parser.add_argument(
        "--quantile", type=float, default=0.99,
        help="latency: target quantile (default 0.99; see docs on cost)",
    )
    return parser


def _build_estimand(args: argparse.Namespace) -> Any:
    if args.estimand == "ve":
        kwargs = {"vdd": args.vdd, "occupancy": args.occupancy}
        if args.threshold_pct is not None:
            kwargs["threshold_pct"] = args.threshold_pct
        return PdnEmergencyEstimand(**kwargs)
    if args.estimand == "fault":
        return FaultSurvivalEstimand(
            framework=args.framework,
            intensity=args.intensity,
            n_apps=args.n_apps,
        )
    return PacketLatencyEstimand(
        policy=args.policy,
        injection_rate_flits=args.injection_rate,
        quantile=args.quantile,
    )


def _print_sequential(result: VerifyResult) -> None:
    interval = result.interval
    status = (
        "stopped when confident"
        if result.stopped_early
        else "budget exhausted"
    )
    print(
        f"verify {result.estimand_spec['estimand']}: "
        f"{interval.estimate:.6g} "
        f"[{interval.lo:.6g}, {interval.hi:.6g}] "
        f"@{interval.confidence * 100:g}% ({interval.method})"
    )
    print(
        f"  replicas: {result.n_replicas}/{result.rule.budget} "
        f"in {result.batches} batches - {status} "
        f"(half-width {interval.half_width:.6g}, "
        f"target {result.rule.half_width:g})"
    )


def _print_splitting(result: SplittingResult) -> None:
    print(
        f"splitting {result.estimand_spec['estimand']}: "
        f"P(level > {result.threshold:g}) ~= {result.probability:.3g} "
        f"(relative std ~{result.relative_std:.2f}, "
        f"independence approximation)"
    )
    stages = ", ".join(
        f"{level:.2f}:{p:.3f}"
        for level, p in zip(result.levels, result.level_probabilities)
    )
    print(
        f"  stages (level:survival): {stages}\n"
        f"  level evaluations: {result.n_evaluations} "
        f"(direct sampling would need ~{int(100 / result.probability)} "
        "for the same target)"
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    estimand = _build_estimand(args)

    if args.splitting:
        if args.estimand != "ve":
            raise ConfigError(
                "importance splitting needs a level function; only the "
                "'ve' estimand provides one",
                estimand=args.estimand,
            )
        result: Any = run_splitting(
            estimand,
            config=SplittingConfig(
                n_per_level=args.n_per_level,
                survivor_fraction=args.survivor_fraction,
                mcmc_moves=args.mcmc_moves,
            ),
            root_seed=args.root_seed,
        )
        _print_splitting(result)
    else:
        estimator = SequentialEstimator(
            estimand,
            rule=StopRule(
                confidence=args.confidence,
                half_width=args.half_width,
                budget=args.budget,
                batch_size=args.batch_size,
                min_replicas=args.min_replicas,
            ),
            root_seed=args.root_seed,
            method=args.method,
            checkpoint_path=args.checkpoint,
            workers=args.workers,
        )
        result = estimator.run(resume=args.resume)
        _print_sequential(result)

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(result.json_str())
        print(f"wrote {args.json_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
