"""Reproduction entry points for every figure in the paper.

Each ``figN`` function returns structured rows and has a ``print_figN``
companion that prints the same series the paper plots.  All entry points
take size/seed knobs so benchmarks can trade accuracy for speed; the
defaults match the paper's setup (20-application sequences, 10x6 mesh at
7 nm, DsPB 65 W).

Fig. 6 and Fig. 7 come from the same runs: 20 applications arriving
every 0.1 s with loose deadlines, so that *every* framework executes all
20 applications and the makespans stay comparable ("total time taken to
execute 20 applications").  Fig. 8 uses deadline-constrained sequences
at the paper's three arrival intervals, where over-subscription forces
drops ("total number of applications successfully completed").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.workload import WorkloadType
from repro.chip.power import PowerModel
from repro.chip.technology import TECHNOLOGY_ORDER, technology
from repro.exp.frameworks import FRAMEWORKS, Framework
from repro.exp.runner import FrameworkResult, run_framework
from repro.apps.suite import ProfileLibrary
from repro.chip.cmp import ChipDescription, default_chip
from repro.pdn.transient import PsnTransientAnalysis
from repro.pdn.waveforms import ActivityBin, TileLoad

#: Deadline slack used by the Fig. 6/7 runs: loose enough that no
#: framework drops an application.
_LOOSE_SLACK = (30.0, 30.0)

#: Fig. 8's framework subset (the paper compares these four).
FIG8_FRAMEWORKS = ("HM+XY", "PARM+XY", "PARM+ICON", "PARM+PANR")


def _fig_load(
    power: PowerModel,
    vdd: float,
    activity: float,
    bin_: ActivityBin,
    flits: float,
) -> TileLoad:
    core = power.core_dynamic(activity, vdd) + power.core_leakage(vdd)
    router = power.router_dynamic(flits, vdd) + power.router_leakage(vdd)
    return TileLoad(core, router, bin_)


# ----------------------------------------------------------------------
# Fig. 1: peak PSN vs technology node
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Fig1Row:
    node: str
    vdd_ntc: float
    peak_psn_pct: float
    avg_psn_pct: float


def fig1(window_s: float = 300e-9, dt_s: float = 50e-12) -> List[Fig1Row]:
    """Peak supply noise at NTC across process nodes (transient model).

    The workload is a fully occupied mixed-activity domain with NoC
    traffic - the inter-core interference scenario of the paper's
    motivation figure.
    """
    rows = []
    for name in TECHNOLOGY_ORDER:
        tech = technology(name)
        power = PowerModel(tech)
        analysis = PsnTransientAnalysis(tech, window_s=window_s, dt_s=dt_s)
        vdd = tech.vdd_ntc
        loads = [
            _fig_load(power, vdd, 0.75, ActivityBin.HIGH, 2.0),
            _fig_load(power, vdd, 0.70, ActivityBin.HIGH, 2.0),
            _fig_load(power, vdd, 0.25, ActivityBin.LOW, 2.0),
            _fig_load(power, vdd, 0.30, ActivityBin.LOW, 2.0),
        ]
        report = analysis.analyze(vdd, loads)
        rows.append(
            Fig1Row(name, vdd, report.domain_peak_pct, report.domain_avg_pct)
        )
    return rows


def print_fig1(rows: Optional[List[Fig1Row]] = None) -> None:
    rows = rows or fig1()
    print("Fig. 1: peak PSN (% of NTC Vdd) across technology nodes")
    print(f"{'node':>6s} {'Vdd_NTC':>8s} {'peak PSN %':>11s} {'avg PSN %':>10s}")
    for r in rows:
        print(
            f"{r.node:>6s} {r.vdd_ntc:>7.2f}V {r.peak_psn_pct:>10.2f} "
            f"{r.avg_psn_pct:>10.2f}"
        )


# ----------------------------------------------------------------------
# Fig. 3a: peak PSN vs Vdd for both workload kinds
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Fig3aRow:
    kind: str
    vdd: float
    peak_psn_pct: float
    avg_psn_pct: float


def fig3a(
    vdds: Sequence[float] = (0.4, 0.5, 0.6, 0.7, 0.8),
    window_s: float = 300e-9,
    dt_s: float = 50e-12,
) -> List[Fig3aRow]:
    """Peak PSN in a fully occupied domain vs supply voltage."""
    tech = technology("7nm")
    power = PowerModel(tech)
    analysis = PsnTransientAnalysis(tech, window_s=window_s, dt_s=dt_s)
    rows = []
    for kind, flits in (("compute", 0.3), ("communication", 2.5)):
        for vdd in vdds:
            loads = [
                _fig_load(power, vdd, 0.70, ActivityBin.HIGH, flits),
                _fig_load(power, vdd, 0.65, ActivityBin.HIGH, flits),
                _fig_load(power, vdd, 0.20, ActivityBin.LOW, flits),
                _fig_load(power, vdd, 0.25, ActivityBin.LOW, flits),
            ]
            report = analysis.analyze(vdd, loads)
            rows.append(
                Fig3aRow(kind, vdd, report.domain_peak_pct, report.domain_avg_pct)
            )
    return rows


def print_fig3a(rows: Optional[List[Fig3aRow]] = None) -> None:
    rows = rows or fig3a()
    print("Fig. 3a: peak PSN (% of Vdd) in a domain vs supply voltage")
    print(f"{'workload':>14s} {'Vdd':>5s} {'peak PSN %':>11s} {'avg PSN %':>10s}")
    for r in rows:
        print(
            f"{r.kind:>14s} {r.vdd:>4.1f}V {r.peak_psn_pct:>10.2f} "
            f"{r.avg_psn_pct:>10.2f}"
        )


# ----------------------------------------------------------------------
# Fig. 3b: normalised pairwise interference
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Fig3bRow:
    pair: str
    hops: int
    interference_pct: float
    normalised: float


def fig3b(
    vdd: float = 0.8,
    window_s: float = 300e-9,
    dt_s: float = 50e-12,
) -> List[Fig3bRow]:
    """Interference PSN between task pairs by activity mix and distance.

    The metric is the *interference component*: the worst increase of
    either tile's peak PSN over running the same task alone, normalised
    to the High-Low 1-hop pair.  This reproduces the paper's two claims:
    High-Low pairs interfere up to ~35 % more than High-High/Low-Low, and
    2-hop separation interferes ~10 % less than 1-hop.
    """
    tech = technology("7nm")
    power = PowerModel(tech)
    analysis = PsnTransientAnalysis(tech, window_s=window_s, dt_s=dt_s)

    high_a = _fig_load(power, vdd, 0.70, ActivityBin.HIGH, 0.5)
    high_b = _fig_load(power, vdd, 0.65, ActivityBin.HIGH, 0.5)
    low_a = _fig_load(power, vdd, 0.25, ActivityBin.LOW, 0.5)
    low_b = _fig_load(power, vdd, 0.20, ActivityBin.LOW, 0.5)

    def solo_peak(load: TileLoad, position: int) -> float:
        loads = [TileLoad.idle()] * 4
        loads[position] = load
        return float(analysis.analyze(vdd, loads).peak_psn_pct[position])

    def interference(load_a: TileLoad, load_b: TileLoad, hops: int) -> float:
        pos_b = 1 if hops == 1 else 3
        report = analysis.pair_analysis(vdd, load_a, load_b, hops)
        return max(
            float(report.peak_psn_pct[0]) - solo_peak(load_a, 0),
            float(report.peak_psn_pct[pos_b]) - solo_peak(load_b, pos_b),
        )

    pairs = {
        "H-H": (high_a, high_b),
        "H-L": (high_a, low_a),
        "L-L": (low_a, low_b),
    }
    raw: Dict[Tuple[str, int], float] = {}
    for name, (a, b) in pairs.items():
        for hops in (1, 2):
            raw[(name, hops)] = interference(a, b, hops)
    norm = raw[("H-L", 1)]
    return [
        Fig3bRow(name, hops, value, value / norm if norm else 0.0)
        for (name, hops), value in raw.items()
    ]


def print_fig3b(rows: Optional[List[Fig3bRow]] = None) -> None:
    rows = rows or fig3b()
    print("Fig. 3b: normalised interference PSN between task pairs")
    print(f"{'pair':>5s} {'hops':>5s} {'interference %':>15s} {'normalised':>11s}")
    for r in rows:
        print(
            f"{r.pair:>5s} {r.hops:>5d} {r.interference_pct:>14.3f} "
            f"{r.normalised:>11.3f}"
        )


# ----------------------------------------------------------------------
# Fig. 6 and Fig. 7: execution time and PSN across the six frameworks
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Fig67Row:
    workload: str
    framework: str
    total_time_s: float
    peak_psn_pct: float
    avg_psn_pct: float
    improvement_vs_hm_xy_pct: float
    psn_reduction_vs_hm_xy: float


def run_fig67(
    workloads: Sequence[WorkloadType] = (
        WorkloadType.COMPUTE,
        WorkloadType.COMMUNICATION,
        WorkloadType.MIXED,
    ),
    frameworks: Sequence[Framework] = FRAMEWORKS,
    n_apps: int = 20,
    seeds: Sequence[int] = (1, 2, 3),
    arrival_interval_s: float = 0.1,
    chip: Optional[ChipDescription] = None,
    library: Optional[ProfileLibrary] = None,
) -> List[Fig67Row]:
    """The shared runs behind Fig. 6 (execution time) and Fig. 7 (PSN).

    ``chip`` / ``library`` default to fresh instances; pass shared ones
    (as the report generator does) to reuse profile and topology caches
    across figures.
    """
    chip = chip or default_chip()
    library = library or ProfileLibrary()
    rows: List[Fig67Row] = []
    for workload in workloads:
        results: Dict[str, FrameworkResult] = {}
        for fw in frameworks:
            results[fw.name] = run_framework(
                fw,
                workload,
                arrival_interval_s,
                n_apps=n_apps,
                seeds=seeds,
                chip=chip,
                library=library,
                deadline_slack_range=_LOOSE_SLACK,
            )
        base = results.get("HM+XY")
        for fw in frameworks:
            r = results[fw.name]
            improvement = (
                100.0 * (base.total_time_s - r.total_time_s) / base.total_time_s
                if base and base.total_time_s
                else 0.0
            )
            reduction = (
                base.peak_psn_pct / r.peak_psn_pct
                if base and r.peak_psn_pct
                else 0.0
            )
            rows.append(
                Fig67Row(
                    workload=workload.value,
                    framework=fw.name,
                    total_time_s=r.total_time_s,
                    peak_psn_pct=r.peak_psn_pct,
                    avg_psn_pct=r.avg_psn_pct,
                    improvement_vs_hm_xy_pct=improvement,
                    psn_reduction_vs_hm_xy=reduction,
                )
            )
    return rows


def print_fig6(rows: List[Fig67Row]) -> None:
    print("Fig. 6: total time to execute the application sequence (s)")
    print(
        f"{'workload':>14s} {'framework':>10s} {'total time':>11s} "
        f"{'vs HM+XY':>9s}"
    )
    for r in rows:
        print(
            f"{r.workload:>14s} {r.framework:>10s} {r.total_time_s:>10.2f}s "
            f"{r.improvement_vs_hm_xy_pct:>+8.1f}%"
        )


def print_fig7(rows: List[Fig67Row]) -> None:
    print("Fig. 7: peak and average PSN (% of Vdd) per framework")
    print(
        f"{'workload':>14s} {'framework':>10s} {'peak %':>7s} {'avg %':>7s} "
        f"{'peak reduction':>15s}"
    )
    for r in rows:
        print(
            f"{r.workload:>14s} {r.framework:>10s} {r.peak_psn_pct:>7.2f} "
            f"{r.avg_psn_pct:>7.2f} {r.psn_reduction_vs_hm_xy:>13.2f}x"
        )


# ----------------------------------------------------------------------
# Fig. 8: applications completed vs arrival rate
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Fig8Row:
    workload: str
    arrival_interval_s: float
    framework: str
    completed: float
    dropped: float
    more_than_hm_xy_pct: float


def fig8(
    workloads: Sequence[WorkloadType] = (
        WorkloadType.COMPUTE,
        WorkloadType.COMMUNICATION,
    ),
    arrival_intervals_s: Sequence[float] = (0.2, 0.1, 0.05),
    framework_names: Sequence[str] = FIG8_FRAMEWORKS,
    n_apps: int = 20,
    seeds: Sequence[int] = (1, 2, 3),
    chip: Optional[ChipDescription] = None,
    library: Optional[ProfileLibrary] = None,
) -> List[Fig8Row]:
    """Applications successfully completed under over-subscription.

    ``chip`` / ``library`` default to fresh instances; pass shared ones
    to reuse profile and topology caches across figures.
    """
    from repro.exp.frameworks import framework as fw_lookup

    chip = chip or default_chip()
    library = library or ProfileLibrary()
    rows: List[Fig8Row] = []
    for workload in workloads:
        for interval in arrival_intervals_s:
            results: Dict[str, FrameworkResult] = {}
            for name in framework_names:
                results[name] = run_framework(
                    fw_lookup(name),
                    workload,
                    interval,
                    n_apps=n_apps,
                    seeds=seeds,
                    chip=chip,
                    library=library,
                )
            base = results.get("HM+XY")
            for name in framework_names:
                r = results[name]
                more = (
                    100.0 * (r.completed - base.completed) / base.completed
                    if base and base.completed
                    else 0.0
                )
                rows.append(
                    Fig8Row(
                        workload=workload.value,
                        arrival_interval_s=interval,
                        framework=name,
                        completed=r.completed,
                        dropped=r.dropped,
                        more_than_hm_xy_pct=more,
                    )
                )
    return rows


def print_fig8(rows: Optional[List[Fig8Row]] = None) -> None:
    rows = rows if rows is not None else fig8()
    print("Fig. 8: applications successfully completed (of the sequence)")
    print(
        f"{'workload':>14s} {'arrival':>8s} {'framework':>10s} "
        f"{'completed':>10s} {'dropped':>8s} {'vs HM+XY':>9s}"
    )
    for r in rows:
        print(
            f"{r.workload:>14s} {r.arrival_interval_s:>7.2f}s "
            f"{r.framework:>10s} {r.completed:>10.1f} {r.dropped:>8.1f} "
            f"{r.more_than_hm_xy_pct:>+8.1f}%"
        )
