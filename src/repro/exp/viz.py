"""ASCII renderers for chip state and per-tile maps.

Terminal-friendly visualisation used by the examples: an occupancy map
showing each application's tasks and their activity bins, and a PSN
heat map with the voltage-emergency margin highlighted.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.apps.graph import ApplicationGraph
from repro.chip.cmp import ChipDescription
from repro.core.base import MappingDecision
from repro.runtime.state import ChipState

#: Shades for the PSN heat map, from quiet to loud.
_HEAT = " .:-=+*#%@"


def render_placement(
    chip: ChipDescription,
    decision: MappingDecision,
    graph: ApplicationGraph,
) -> str:
    """One application's placement: ``H``/``L`` per task, ``.`` dark."""
    tile_task = {tile: task for task, tile in decision.task_to_tile.items()}
    lines = []
    for y in range(chip.mesh.height):
        cells = []
        for x in range(chip.mesh.width):
            tile = chip.mesh.tile_at((x, y))
            task_id = tile_task.get(tile)
            if task_id is None:
                cells.append(".")
            else:
                bin_ = graph.task(task_id).activity_bin
                cells.append("H" if bin_.is_high else "L")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def render_occupancy(chip: ChipDescription, state: ChipState) -> str:
    """Whole-chip occupancy: one letter per application, ``.`` free.

    Applications are lettered a, b, c, ... in ascending app-id order
    (wrapping after z).
    """
    letters: Dict[int, str] = {}
    for i, app_id in enumerate(state.running_apps()):
        letters[app_id] = chr(ord("a") + i % 26)
    lines = []
    for y in range(chip.mesh.height):
        cells = []
        for x in range(chip.mesh.width):
            occ = state.occupant(chip.mesh.tile_at((x, y)))
            cells.append(letters[occ.app_id] if occ else ".")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def render_psn_heatmap(
    chip: ChipDescription,
    psn_pct: Sequence[float],
    threshold_pct: Optional[float] = 5.0,
) -> str:
    """Per-tile PSN heat map; tiles above the VE margin render as ``!``.

    Args:
        chip: The platform (for the mesh shape).
        psn_pct: One PSN value per tile, percent of Vdd.
        threshold_pct: Voltage-emergency margin; ``None`` disables the
            emergency marker.
    """
    values = list(psn_pct)
    if len(values) != chip.tile_count:
        raise ValueError(
            f"need {chip.tile_count} PSN values, got {len(values)}"
        )
    top = max(max(values), 1e-9)
    lines = []
    for y in range(chip.mesh.height):
        cells = []
        for x in range(chip.mesh.width):
            v = values[chip.mesh.tile_at((x, y))]
            if threshold_pct is not None and v > threshold_pct:
                cells.append("!")
            else:
                idx = min(int(v / top * (len(_HEAT) - 1)), len(_HEAT) - 1)
                cells.append(_HEAT[idx] if v > 0 else ".")
        lines.append(" ".join(cells))
    legend = f"scale: '.'=0  '@'={top:.1f}%"
    if threshold_pct is not None:
        legend += f"  '!'>{threshold_pct:.0f}% (voltage emergency)"
    return "\n".join(lines) + "\n" + legend


def render_psn_timeline(
    trace,
    width: int = 64,
    threshold_pct: Optional[float] = 5.0,
) -> str:
    """ASCII timeline of chip peak PSN from a runtime trace.

    Args:
        trace: ``RunMetrics.trace`` entries (time, peak PSN %, occupied
            tiles), as recorded with ``record_trace=True``.
        width: Number of time buckets to render.
        threshold_pct: Rows above this level render with ``!``.
    """
    if not trace:
        return "(empty trace)"
    t_end = trace[-1][0]
    if t_end <= 0:
        return "(trace too short)"
    # Bucket by time, keeping the worst peak per bucket.
    buckets = [0.0] * width
    for t, peak, _ in trace:
        idx = min(int(t / t_end * (width - 1)), width - 1)
        buckets[idx] = max(buckets[idx], peak)
    top = max(max(buckets), 1e-9)
    levels = 8
    lines = []
    for level in range(levels, 0, -1):
        cut = top * (level - 0.5) / levels
        marker_row = ""
        for value in buckets:
            if value >= cut:
                over = (
                    threshold_pct is not None and cut >= threshold_pct
                )
                marker_row += "!" if over else "#"
            else:
                marker_row += " "
        lines.append(f"{top * level / levels:6.1f}% |{marker_row}|")
    lines.append(f"{'':>8s}0s{'':>{max(width - 10, 1)}s}{t_end:.2f}s")
    return "\n".join(lines)
