"""Fault-intensity sweep: robustness of the compared frameworks.

An extension of the Fig. 8 protocol: the same over-subscribed workload
is replayed while a seeded :class:`~repro.faults.campaign.FaultCampaign`
injects sensor faults, link/router failures, VRM droop episodes and
permanent tile failures, with the campaign's *intensity* swept from 0
(fault-free) to 1 (the full sampled schedule).  Campaigns are sampled
with coupled thinning, so the event set at a lower intensity is a subset
of the event set at a higher one - the sweep measures pure fault-load
response, not sampling noise.

Reported per (framework, intensity): applications completed, failed
(recovery retries exhausted), dropped (deadline), execution-time
degradation versus the same framework's fault-free run, and the
fault/re-map counters.  The headline comparison is PARM+PANR versus the
HM+XY baseline: the PSN-aware stack degrades gracefully (PANR falls back
toward XY under sensor faults; PARM re-maps around dead tiles) and
should complete at least as many applications at every intensity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.suite import ProfileLibrary
from repro.apps.workload import WorkloadType, generate_workload
from repro.chip.cmp import ChipDescription, default_chip
from repro.exp.frameworks import framework as fw_lookup
from repro.faults import (
    DEFAULT_FAULT_RATES,
    FaultCampaign,
    FaultKind,
    FaultRates,
    FaultState,
)
from repro.harness.errors import ConfigError
from repro.harness.seeding import derive_seeds
from repro.runtime.metrics import RunMetrics
from repro.runtime.simulator import RuntimeSimulator

#: Frameworks compared in the sweep (headline pair of the robustness
#: story; any evaluation framework name is accepted).
FAULT_SWEEP_FRAMEWORKS = ("HM+XY", "PARM+PANR")

#: Default intensity grid (0 = fault-free reference point).  A coarse
#: grid keeps the per-step fault-load delta large relative to the
#: run-to-run timing jitter benign faults introduce, so the completion
#: curve is reliably monotone at the default seed count.
DEFAULT_INTENSITIES = (0.0, 0.5, 1.0)

#: Default campaign rates for the sweep: the module-level defaults
#: scaled so that permanent damage (dead tiles/routers), not timing
#: jitter, dominates each intensity step.
SWEEP_FAULT_RATES = DEFAULT_FAULT_RATES.scaled(3.0)

#: Historical seed offsets.  The sweep's committed outputs predate
#: :func:`repro.harness.seeding.derive_seeds`, so the legacy additive
#: streams (``7000 + seed`` for campaign sampling, ``seed + 1000`` for
#: the simulator) are preserved byte-identically via ``pinned=`` - the
#: pin is explicit at the call site instead of a bare offset.
_CAMPAIGN_SEED_OFFSET = 7000
_SIM_SEED_OFFSET = 1000


@dataclass(frozen=True)
class FaultSweepRow:
    """Seed-averaged outcome of one framework at one fault intensity."""

    framework: str
    intensity: float
    completed: float
    dropped: float
    failed: float
    total_time_s: float
    fault_count: float
    remap_count: float
    #: Execution-time degradation versus the same framework at
    #: intensity 0 (percent; 0 when the sweep omits intensity 0).
    degradation_pct: float


def fault_sweep(
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    framework_names: Sequence[str] = FAULT_SWEEP_FRAMEWORKS,
    workload_type: WorkloadType = WorkloadType.MIXED,
    arrival_interval_s: float = 0.1,
    n_apps: int = 12,
    seeds: Sequence[int] = (1, 2, 3),
    rates: FaultRates = SWEEP_FAULT_RATES,
    chip: Optional[ChipDescription] = None,
    library: Optional[ProfileLibrary] = None,
) -> List[FaultSweepRow]:
    """Sweep fault-campaign intensity over the compared frameworks.

    Campaigns are sampled once per seed at the full rate and thinned per
    intensity (one RNG stream per seed, shared across intensities and
    frameworks), so every framework faces the identical fault schedule
    and higher intensities strictly add events.

    Args:
        intensities: Thinning factors in ``[0, 1]``; include 0.0 to get
            the fault-free reference the degradation column needs.
        framework_names: Evaluation framework names to compare.
        workload_type: Benchmark group of the sequences.
        arrival_interval_s: Inter-application arrival interval.
        n_apps: Applications per sequence.
        seeds: One workload + campaign per seed; results are averaged.
        rates: Full-intensity Poisson rates of the campaign.
        chip: Platform (default: the paper's 60-tile 7 nm CMP).
        library: Shared profile library.

    Returns:
        One row per (framework, intensity), frameworks grouped together
        in the order given.

    Raises:
        ConfigError: on empty seed/intensity lists, out-of-range
            intensities, or non-positive ``n_apps`` /
            ``arrival_interval_s``.
    """
    seeds = tuple(seeds)
    intensities = tuple(intensities)
    if not seeds:
        raise ConfigError("seeds must not be empty")
    if not intensities:
        raise ConfigError("intensities must not be empty")
    out_of_range = [i for i in intensities if not 0.0 <= i <= 1.0]
    if out_of_range:
        raise ConfigError(
            "intensities must lie in [0, 1]", intensities=tuple(out_of_range)
        )
    if n_apps <= 0:
        raise ConfigError("n_apps must be positive", n_apps=n_apps)
    if not np.isfinite(arrival_interval_s) or arrival_interval_s <= 0:
        raise ConfigError(
            "arrival_interval_s must be positive and finite",
            arrival_interval_s=arrival_interval_s,
        )
    chip = chip or default_chip()
    library = library or ProfileLibrary()
    frameworks = [fw_lookup(name) for name in framework_names]
    # The campaign horizon must cover arrivals plus the execution tail.
    horizon_s = n_apps * arrival_interval_s + 5.0

    campaign_seeds = derive_seeds(
        seeds[0],
        "exp/faults/campaign",
        len(seeds),
        pinned=tuple(_CAMPAIGN_SEED_OFFSET + seed for seed in seeds),
    )
    sim_seeds = derive_seeds(
        seeds[0],
        "exp/faults/sim",
        len(seeds),
        pinned=tuple(seed + _SIM_SEED_OFFSET for seed in seeds),
    )

    per_point: Dict[Tuple[str, float], List[RunMetrics]] = {
        (fw.name, i): [] for fw in frameworks for i in intensities
    }
    for seed, campaign_seed, sim_seed in zip(
        seeds, campaign_seeds, sim_seeds
    ):
        workload = generate_workload(
            workload_type,
            arrival_interval_s,
            n_apps=n_apps,
            seed=seed,
            library=library,
        )
        campaigns = {
            intensity: FaultCampaign.sample(
                chip,
                horizon_s,
                np.random.default_rng(campaign_seed),
                rates=rates,
                intensity=intensity,
            )
            for intensity in intensities
        }
        for fw in frameworks:
            for intensity in intensities:
                sim = RuntimeSimulator(
                    chip,
                    fw.make_manager(),
                    fw.make_routing(),
                    faults=campaigns[intensity],
                    seed=sim_seed,
                )
                per_point[(fw.name, intensity)].append(sim.run(workload))

    rows: List[FaultSweepRow] = []
    for fw in frameworks:
        base_runs = per_point.get((fw.name, 0.0))
        base_time = (
            float(np.mean([r.total_time_s for r in base_runs]))
            if base_runs
            else 0.0
        )
        for intensity in intensities:
            runs = per_point[(fw.name, intensity)]
            total_time = float(np.mean([r.total_time_s for r in runs]))
            degradation = (
                100.0 * (total_time - base_time) / base_time
                if base_time > 0
                else 0.0
            )
            rows.append(
                FaultSweepRow(
                    framework=fw.name,
                    intensity=float(intensity),
                    completed=float(np.mean([r.completed_count for r in runs])),
                    dropped=float(np.mean([r.dropped_count for r in runs])),
                    failed=float(np.mean([r.failed_count for r in runs])),
                    total_time_s=total_time,
                    fault_count=float(np.mean([r.fault_count for r in runs])),
                    remap_count=float(np.mean([r.remap_count for r in runs])),
                    degradation_pct=degradation,
                )
            )
    return rows


@dataclass(frozen=True)
class FaultNocRow:
    """Seed-averaged NoC response at one (policy, fault intensity)."""

    policy: str
    intensity: float
    avg_latency_cycles: float
    p95_latency_cycles: float
    throughput_flits_per_cycle: float
    delivered_pct: float
    #: Mean count of tiles whose PSN floor is raised by an active droop.
    droop_tiles: float
    #: Mean active droop magnitude over all tiles (percent of Vdd).
    mean_droop_pct: float


#: Baseline PSN of droop-free tiles in the NoC fault sweep (percent).
NOC_SWEEP_QUIET_PSN_PCT = 4.0


def fault_noc_sweep(
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    policies: Sequence[str] = ("xy", "panr"),
    seeds: Sequence[int] = (1, 2),
    injection_rate_flits: float = 0.25,
    cycles: int = 1500,
    packet_size_flits: int = 4,
    rates: FaultRates = SWEEP_FAULT_RATES,
    chip: Optional[ChipDescription] = None,
) -> List[FaultNocRow]:
    """NoC latency/throughput response to VRM-droop fault load.

    Complements :func:`fault_sweep` (whole-runtime robustness) with the
    network-level view: per (intensity, seed), the full fault campaign
    is sampled with the same coupled thinning, its VRM-droop episodes
    active at the mid-horizon observation instant are folded into a
    per-tile PSN field via :class:`~repro.faults.state.FaultState`, and
    the flit-level engine runs uniform-random traffic under that field
    for every policy.  All of a policy's (intensity, seed) grid points
    are lanes of one :func:`~repro.noc.batch.simulate_lanes` call, so
    context-free policies (XY) advance as a single
    :class:`~repro.noc.batch.BatchedNocEngine` pass and adaptive ones
    (PANR) fall back per-lane - each lane byte-identical to a scalar
    run either way.

    Traffic is re-used across intensities (one pattern per seed), so
    rows measure pure fault-load response, not traffic noise.

    Returns:
        One row per (policy, intensity), policies grouped together,
        intensities in the order given.

    Raises:
        ConfigError: on empty grids or out-of-range parameters.
    """
    from repro.harness.seeding import derive_seed
    from repro.noc.batch import LaneSpec, simulate_lanes
    from repro.noc.cycle.simulator import TrafficFlow
    from repro.noc.routing import make_routing

    seeds = tuple(seeds)
    intensities = tuple(intensities)
    policies = tuple(policies)
    if not seeds or not intensities or not policies:
        raise ConfigError(
            "seeds, intensities and policies must not be empty"
        )
    out_of_range = [i for i in intensities if not 0.0 <= i <= 1.0]
    if out_of_range:
        raise ConfigError(
            "intensities must lie in [0, 1]", intensities=tuple(out_of_range)
        )
    if injection_rate_flits <= 0 or cycles <= 0:
        raise ConfigError(
            "injection_rate_flits and cycles must be positive",
            injection_rate_flits=injection_rate_flits,
            cycles=cycles,
        )
    chip = chip or default_chip()
    mesh = chip.mesh
    n = mesh.tile_count
    horizon_s = 10.0
    t_obs = horizon_s / 2.0

    def traffic(seed: int) -> Tuple[TrafficFlow, ...]:
        rng = np.random.default_rng(
            derive_seed(seed, "exp/faults/noc-traffic", 0)
        )
        flows = []
        for src in range(n):
            dst = int(rng.integers(0, n - 1))
            if dst >= src:
                dst += 1
            flows.append(
                TrafficFlow(
                    src=src,
                    dst=dst,
                    rate=injection_rate_flits,
                    packet_size=packet_size_flits,
                )
            )
        return tuple(flows)

    # One PSN field per (intensity, seed): sample the campaign with the
    # coupled-thinning stream shared across intensities, then fold the
    # droop episodes active at t_obs into the per-tile floor.
    flows_of = {seed: traffic(seed) for seed in seeds}
    psn_of: Dict[Tuple[float, int], np.ndarray] = {}
    for seed in seeds:
        campaign_seed = derive_seed(seed, "exp/faults/noc-campaign", 0)
        for intensity in intensities:
            campaign = FaultCampaign.sample(
                chip,
                horizon_s,
                np.random.default_rng(campaign_seed),
                rates=rates,
                intensity=intensity,
            )
            state = FaultState(chip)
            for event in campaign.events:
                if event.kind is not FaultKind.VRM_DROOP:
                    continue
                end_s = event.time_s + (event.duration_s or 0.0)
                if event.time_s <= t_obs < end_s:
                    state.apply(event)
            psn_of[(intensity, seed)] = (
                NOC_SWEEP_QUIET_PSN_PCT + state.droop_pct
            )

    rows: List[FaultNocRow] = []
    for policy in policies:
        grid = [(i, s) for i in intensities for s in seeds]
        lanes = [
            LaneSpec(
                flows=flows_of[seed],
                seed=derive_seed(seed, "exp/faults/noc-sim", 0),
                psn_pct=tuple(float(v) for v in psn_of[(intensity, seed)]),
            )
            for intensity, seed in grid
        ]
        stats_list = simulate_lanes(
            mesh, make_routing(policy), lanes, cycles
        )
        by_cell: Dict[float, List] = {i: [] for i in intensities}
        for (intensity, _), stats in zip(grid, stats_list):
            by_cell[intensity].append(stats)
        for intensity in intensities:
            cell = by_cell[intensity]
            fields = [psn_of[(intensity, s)] for s in seeds]
            delivered = [
                100.0 * st.packets_delivered / st.packets_injected
                if st.packets_injected
                else 0.0
                for st in cell
            ]
            rows.append(
                FaultNocRow(
                    policy=policy,
                    intensity=float(intensity),
                    avg_latency_cycles=float(
                        np.mean([st.avg_packet_latency for st in cell])
                    ),
                    p95_latency_cycles=float(
                        np.mean([st.p95_packet_latency for st in cell])
                    ),
                    throughput_flits_per_cycle=float(
                        np.mean(
                            [st.throughput_flits_per_cycle for st in cell]
                        )
                    ),
                    delivered_pct=float(np.mean(delivered)),
                    droop_tiles=float(
                        np.mean(
                            [
                                np.count_nonzero(
                                    f > NOC_SWEEP_QUIET_PSN_PCT
                                )
                                for f in fields
                            ]
                        )
                    ),
                    mean_droop_pct=float(
                        np.mean(
                            [
                                f.mean() - NOC_SWEEP_QUIET_PSN_PCT
                                for f in fields
                            ]
                        )
                    ),
                )
            )
    return rows


def print_fault_noc_sweep(rows: Optional[List[FaultNocRow]] = None) -> None:
    """Print the NoC fault sweep as a fixed-width table."""
    rows = rows if rows is not None else fault_noc_sweep()
    print("NoC fault sweep: latency/throughput vs droop fault intensity")
    print(
        f"{'policy':>9s} {'intensity':>9s} {'avg_lat[cyc]':>12s} "
        f"{'p95_lat[cyc]':>12s} {'thr[f/c]':>9s} {'delivered[%]':>12s} "
        f"{'droop_tiles':>11s} {'droop[%]':>8s}"
    )
    for r in rows:
        print(
            f"{r.policy:>9s} {r.intensity:>9.2f} "
            f"{r.avg_latency_cycles:>12.2f} "
            f"{r.p95_latency_cycles:>12.2f} "
            f"{r.throughput_flits_per_cycle:>9.3f} "
            f"{r.delivered_pct:>12.1f} {r.droop_tiles:>11.1f} "
            f"{r.mean_droop_pct:>8.3f}"
        )


def print_fault_sweep(rows: Optional[List[FaultSweepRow]] = None) -> None:
    """Print the sweep as the report's fixed-width table."""
    rows = rows if rows is not None else fault_sweep()
    print("Fault sweep: applications completed vs campaign intensity")
    print(
        f"{'framework':>10s} {'intensity':>9s} {'completed':>9s} "
        f"{'dropped':>7s} {'failed':>6s} {'faults':>6s} {'remaps':>6s} "
        f"{'time[s]':>8s} {'degr[%]':>8s}"
    )
    for r in rows:
        print(
            f"{r.framework:>10s} {r.intensity:>9.2f} {r.completed:>9.1f} "
            f"{r.dropped:>7.1f} {r.failed:>6.1f} {r.fault_count:>6.1f} "
            f"{r.remap_count:>6.1f} {r.total_time_s:>8.3f} "
            f"{r.degradation_pct:>+8.1f}"
        )
