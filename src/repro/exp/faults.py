"""Fault-intensity sweep: robustness of the compared frameworks.

An extension of the Fig. 8 protocol: the same over-subscribed workload
is replayed while a seeded :class:`~repro.faults.campaign.FaultCampaign`
injects sensor faults, link/router failures, VRM droop episodes and
permanent tile failures, with the campaign's *intensity* swept from 0
(fault-free) to 1 (the full sampled schedule).  Campaigns are sampled
with coupled thinning, so the event set at a lower intensity is a subset
of the event set at a higher one - the sweep measures pure fault-load
response, not sampling noise.

Reported per (framework, intensity): applications completed, failed
(recovery retries exhausted), dropped (deadline), execution-time
degradation versus the same framework's fault-free run, and the
fault/re-map counters.  The headline comparison is PARM+PANR versus the
HM+XY baseline: the PSN-aware stack degrades gracefully (PANR falls back
toward XY under sensor faults; PARM re-maps around dead tiles) and
should complete at least as many applications at every intensity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.suite import ProfileLibrary
from repro.apps.workload import WorkloadType, generate_workload
from repro.chip.cmp import ChipDescription, default_chip
from repro.exp.frameworks import framework as fw_lookup
from repro.faults import DEFAULT_FAULT_RATES, FaultCampaign, FaultRates
from repro.harness.errors import ConfigError
from repro.harness.seeding import derive_seeds
from repro.runtime.metrics import RunMetrics
from repro.runtime.simulator import RuntimeSimulator

#: Frameworks compared in the sweep (headline pair of the robustness
#: story; any evaluation framework name is accepted).
FAULT_SWEEP_FRAMEWORKS = ("HM+XY", "PARM+PANR")

#: Default intensity grid (0 = fault-free reference point).  A coarse
#: grid keeps the per-step fault-load delta large relative to the
#: run-to-run timing jitter benign faults introduce, so the completion
#: curve is reliably monotone at the default seed count.
DEFAULT_INTENSITIES = (0.0, 0.5, 1.0)

#: Default campaign rates for the sweep: the module-level defaults
#: scaled so that permanent damage (dead tiles/routers), not timing
#: jitter, dominates each intensity step.
SWEEP_FAULT_RATES = DEFAULT_FAULT_RATES.scaled(3.0)

#: Historical seed offsets.  The sweep's committed outputs predate
#: :func:`repro.harness.seeding.derive_seeds`, so the legacy additive
#: streams (``7000 + seed`` for campaign sampling, ``seed + 1000`` for
#: the simulator) are preserved byte-identically via ``pinned=`` - the
#: pin is explicit at the call site instead of a bare offset.
_CAMPAIGN_SEED_OFFSET = 7000
_SIM_SEED_OFFSET = 1000


@dataclass(frozen=True)
class FaultSweepRow:
    """Seed-averaged outcome of one framework at one fault intensity."""

    framework: str
    intensity: float
    completed: float
    dropped: float
    failed: float
    total_time_s: float
    fault_count: float
    remap_count: float
    #: Execution-time degradation versus the same framework at
    #: intensity 0 (percent; 0 when the sweep omits intensity 0).
    degradation_pct: float


def fault_sweep(
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    framework_names: Sequence[str] = FAULT_SWEEP_FRAMEWORKS,
    workload_type: WorkloadType = WorkloadType.MIXED,
    arrival_interval_s: float = 0.1,
    n_apps: int = 12,
    seeds: Sequence[int] = (1, 2, 3),
    rates: FaultRates = SWEEP_FAULT_RATES,
    chip: Optional[ChipDescription] = None,
    library: Optional[ProfileLibrary] = None,
) -> List[FaultSweepRow]:
    """Sweep fault-campaign intensity over the compared frameworks.

    Campaigns are sampled once per seed at the full rate and thinned per
    intensity (one RNG stream per seed, shared across intensities and
    frameworks), so every framework faces the identical fault schedule
    and higher intensities strictly add events.

    Args:
        intensities: Thinning factors in ``[0, 1]``; include 0.0 to get
            the fault-free reference the degradation column needs.
        framework_names: Evaluation framework names to compare.
        workload_type: Benchmark group of the sequences.
        arrival_interval_s: Inter-application arrival interval.
        n_apps: Applications per sequence.
        seeds: One workload + campaign per seed; results are averaged.
        rates: Full-intensity Poisson rates of the campaign.
        chip: Platform (default: the paper's 60-tile 7 nm CMP).
        library: Shared profile library.

    Returns:
        One row per (framework, intensity), frameworks grouped together
        in the order given.

    Raises:
        ConfigError: on empty seed/intensity lists, out-of-range
            intensities, or non-positive ``n_apps`` /
            ``arrival_interval_s``.
    """
    seeds = tuple(seeds)
    intensities = tuple(intensities)
    if not seeds:
        raise ConfigError("seeds must not be empty")
    if not intensities:
        raise ConfigError("intensities must not be empty")
    out_of_range = [i for i in intensities if not 0.0 <= i <= 1.0]
    if out_of_range:
        raise ConfigError(
            "intensities must lie in [0, 1]", intensities=tuple(out_of_range)
        )
    if n_apps <= 0:
        raise ConfigError("n_apps must be positive", n_apps=n_apps)
    if not np.isfinite(arrival_interval_s) or arrival_interval_s <= 0:
        raise ConfigError(
            "arrival_interval_s must be positive and finite",
            arrival_interval_s=arrival_interval_s,
        )
    chip = chip or default_chip()
    library = library or ProfileLibrary()
    frameworks = [fw_lookup(name) for name in framework_names]
    # The campaign horizon must cover arrivals plus the execution tail.
    horizon_s = n_apps * arrival_interval_s + 5.0

    campaign_seeds = derive_seeds(
        seeds[0],
        "exp/faults/campaign",
        len(seeds),
        pinned=tuple(_CAMPAIGN_SEED_OFFSET + seed for seed in seeds),
    )
    sim_seeds = derive_seeds(
        seeds[0],
        "exp/faults/sim",
        len(seeds),
        pinned=tuple(seed + _SIM_SEED_OFFSET for seed in seeds),
    )

    per_point: Dict[Tuple[str, float], List[RunMetrics]] = {
        (fw.name, i): [] for fw in frameworks for i in intensities
    }
    for seed, campaign_seed, sim_seed in zip(
        seeds, campaign_seeds, sim_seeds
    ):
        workload = generate_workload(
            workload_type,
            arrival_interval_s,
            n_apps=n_apps,
            seed=seed,
            library=library,
        )
        campaigns = {
            intensity: FaultCampaign.sample(
                chip,
                horizon_s,
                np.random.default_rng(campaign_seed),
                rates=rates,
                intensity=intensity,
            )
            for intensity in intensities
        }
        for fw in frameworks:
            for intensity in intensities:
                sim = RuntimeSimulator(
                    chip,
                    fw.make_manager(),
                    fw.make_routing(),
                    faults=campaigns[intensity],
                    seed=sim_seed,
                )
                per_point[(fw.name, intensity)].append(sim.run(workload))

    rows: List[FaultSweepRow] = []
    for fw in frameworks:
        base_runs = per_point.get((fw.name, 0.0))
        base_time = (
            float(np.mean([r.total_time_s for r in base_runs]))
            if base_runs
            else 0.0
        )
        for intensity in intensities:
            runs = per_point[(fw.name, intensity)]
            total_time = float(np.mean([r.total_time_s for r in runs]))
            degradation = (
                100.0 * (total_time - base_time) / base_time
                if base_time > 0
                else 0.0
            )
            rows.append(
                FaultSweepRow(
                    framework=fw.name,
                    intensity=float(intensity),
                    completed=float(np.mean([r.completed_count for r in runs])),
                    dropped=float(np.mean([r.dropped_count for r in runs])),
                    failed=float(np.mean([r.failed_count for r in runs])),
                    total_time_s=total_time,
                    fault_count=float(np.mean([r.fault_count for r in runs])),
                    remap_count=float(np.mean([r.remap_count for r in runs])),
                    degradation_pct=degradation,
                )
            )
    return rows


def print_fault_sweep(rows: Optional[List[FaultSweepRow]] = None) -> None:
    """Print the sweep as the report's fixed-width table."""
    rows = rows if rows is not None else fault_sweep()
    print("Fault sweep: applications completed vs campaign intensity")
    print(
        f"{'framework':>10s} {'intensity':>9s} {'completed':>9s} "
        f"{'dropped':>7s} {'failed':>6s} {'faults':>6s} {'remaps':>6s} "
        f"{'time[s]':>8s} {'degr[%]':>8s}"
    )
    for r in rows:
        print(
            f"{r.framework:>10s} {r.intensity:>9.2f} {r.completed:>9.1f} "
            f"{r.dropped:>7.1f} {r.failed:>6.1f} {r.fault_count:>6.1f} "
            f"{r.remap_count:>6.1f} {r.total_time_s:>8.3f} "
            f"{r.degradation_pct:>+8.1f}"
        )
