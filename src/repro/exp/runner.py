"""Runs one framework over one workload, with seed averaging.

The paper reports each framework over three application sequences per
workload type; we expose the sequence/seed count as a parameter so tests
and quick benchmarks can use fewer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.suite import ProfileLibrary
from repro.apps.workload import WorkloadType, generate_workload
from repro.chip.cmp import ChipDescription, default_chip
from repro.exp.frameworks import Framework
from repro.harness.errors import ConfigError
from repro.harness.seeding import derive_seeds
from repro.runtime.metrics import RunMetrics
from repro.runtime.simulator import RuntimeSimulator, SimulatorContext

#: Historical simulator-seed offset.  Committed tables and pinned test
#: fixtures were produced with ``seed + 1000`` simulator streams, so the
#: legacy derivation is kept, routed through
#: :func:`repro.harness.seeding.derive_seeds` with ``pinned=`` to make
#: the pin explicit rather than an unexplained literal.
_SIM_SEED_OFFSET = 1000


@dataclass(frozen=True)
class FrameworkResult:
    """Seed-averaged outcome of one framework on one workload setting.

    The ``*_std`` fields carry the across-seed standard deviation (zero
    for single-seed runs) so tables can report spread.
    """

    framework: str
    workload: str
    arrival_interval_s: float
    total_time_s: float
    peak_psn_pct: float
    avg_psn_pct: float
    completed: float
    dropped: float
    ve_count: float
    total_time_std_s: float
    completed_std: float
    runs: Tuple[RunMetrics, ...]


def run_framework(
    fw: Framework,
    workload_type: WorkloadType,
    arrival_interval_s: float,
    n_apps: int = 20,
    seeds: Sequence[int] = (1, 2, 3),
    chip: Optional[ChipDescription] = None,
    library: Optional[ProfileLibrary] = None,
    deadline_slack_range: Optional[Tuple[float, float]] = None,
) -> FrameworkResult:
    """Simulate one framework over one workload setting.

    Args:
        fw: The (mapper, router) combination.
        workload_type: Benchmark group of the sequence.
        arrival_interval_s: Inter-application arrival interval.
        n_apps: Applications per sequence (paper: 20).
        seeds: One run per seed (sequence and VE sampling both derive
            from it); results are averaged.
        chip: Platform (default: the paper's 60-tile 7 nm CMP).
        library: Shared profile library.
        deadline_slack_range: Override for the workload deadline slack.
            ``None`` uses the generator default; Fig. 6/7 pass a loose
            value so that every application completes under every
            framework and makespans stay comparable.

    Raises:
        ConfigError: on an empty seed list or non-positive/non-finite
            ``n_apps`` / ``arrival_interval_s`` - instead of silently
            looping zero times or dividing by zero downstream.
    """
    seeds = tuple(seeds)
    where = {"framework": fw.name, "workload": workload_type.value}
    if not seeds:
        raise ConfigError("seeds must not be empty", **where)
    if n_apps <= 0:
        raise ConfigError("n_apps must be positive", n_apps=n_apps, **where)
    if not np.isfinite(arrival_interval_s) or arrival_interval_s <= 0:
        raise ConfigError(
            "arrival_interval_s must be positive and finite",
            arrival_interval_s=arrival_interval_s,
            **where,
        )
    chip = chip or default_chip()
    library = library or ProfileLibrary()
    # Chip-derived immutables (topology tables, fitted kernel ladders,
    # performance model, domain maps) are identical across seeds: build
    # them once and hand the same context to every simulator instead of
    # re-deriving the warm-up state per seed.
    context = SimulatorContext.for_chip(chip)
    sim_seeds = derive_seeds(
        seeds[0],
        "exp/runner/sim",
        len(seeds),
        pinned=tuple(seed + _SIM_SEED_OFFSET for seed in seeds),
    )
    runs: List[RunMetrics] = []
    for seed, sim_seed in zip(seeds, sim_seeds):
        kwargs = {}
        if deadline_slack_range is not None:
            kwargs["deadline_slack_range"] = deadline_slack_range
        workload = generate_workload(
            workload_type,
            arrival_interval_s,
            n_apps=n_apps,
            seed=seed,
            library=library,
            **kwargs,
        )
        sim = RuntimeSimulator(
            chip,
            fw.make_manager(),
            fw.make_routing(),
            seed=sim_seed,
            context=context,
        )
        runs.append(sim.run(workload))
    return FrameworkResult(
        framework=fw.name,
        workload=workload_type.value,
        arrival_interval_s=arrival_interval_s,
        total_time_s=float(np.mean([r.total_time_s for r in runs])),
        peak_psn_pct=float(np.mean([r.peak_psn_pct for r in runs])),
        avg_psn_pct=float(np.mean([r.avg_psn_pct for r in runs])),
        completed=float(np.mean([r.completed_count for r in runs])),
        dropped=float(np.mean([r.dropped_count for r in runs])),
        ve_count=float(np.mean([r.total_ve_count for r in runs])),
        total_time_std_s=float(np.std([r.total_time_s for r in runs])),
        completed_std=float(np.std([r.completed_count for r in runs])),
        runs=tuple(runs),
    )
