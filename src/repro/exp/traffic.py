"""Traffic comparison: PARM vs HM under open-ended service load.

The paper's Fig. 6-8 replay a fixed 20-app sequence; this experiment
instead drives the :mod:`repro.runtime.service` runtime at three load
levels (light, saturation, overload - Poisson rates scaled off the
same base) and compares the frameworks where an overloaded service
actually differs: drop rate, SLA miss rate, shed fraction, and the
steady-state wait/sojourn percentiles from the streaming P-square
summaries.

The load ladder is expressed as multipliers of ``base_rate_hz`` so one
knob moves the whole experiment between regimes; the defaults put the
middle rung near the chip's service capacity for the mixed workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.runtime.service.arrivals import PoissonProcess
from repro.runtime.service.config import ServiceConfig
from repro.runtime.service.engine import ServiceEngine, ServiceState

#: (label, multiplier of the base rate) - light load, saturation knee,
#: sustained overload.
LOAD_LEVELS: Tuple[Tuple[str, float], ...] = (
    ("light", 0.5),
    ("saturation", 1.5),
    ("overload", 3.0),
)

#: The two headline frameworks of the paper's comparison.
TRAFFIC_FRAMEWORKS: Tuple[str, ...] = ("HM+XY", "PARM+PANR")


@dataclass(frozen=True)
class TrafficRow:
    """One (framework, load level) service outcome."""

    framework: str
    load: str
    rate_hz: float
    arrived: int
    completed: int
    drop_fraction: float
    sla_miss_fraction: float
    shed_fraction: float
    utilization_fraction: float
    wait_p95_s: float
    sojourn_p99_s: float
    peak_psn_pct: float


def traffic_sweep(
    base_rate_hz: float = 4.0,
    epochs: int = 4,
    epoch_duration_s: float = 2.0,
    seed: int = 0,
    frameworks: Sequence[str] = TRAFFIC_FRAMEWORKS,
    load_levels: Sequence[Tuple[str, float]] = LOAD_LEVELS,
    chip=None,
    library=None,
) -> List[TrafficRow]:
    """Run the frameworks x load-levels service grid.

    Engines are rebuilt per config (they are cheap next to the run);
    the profile library inside each engine is the expensive part, so
    pass the report's shared ``chip``/``library`` to skip re-warming.
    """
    from repro.apps.suite import ProfileLibrary
    from repro.chip.cmp import default_chip
    from repro.runtime.simulator import SimulatorContext

    chip = chip or default_chip()
    library = library or ProfileLibrary()
    context = SimulatorContext.for_chip(chip)

    rows: List[TrafficRow] = []
    for framework in frameworks:
        for label, multiplier in load_levels:
            rate = base_rate_hz * multiplier
            config = ServiceConfig(
                framework=framework,
                arrival=PoissonProcess(rate_hz=rate),
                epochs=epochs,
                epoch_duration_s=epoch_duration_s,
                root_seed=seed,
            )
            engine = ServiceEngine(
                config, chip=chip, library=library, context=context
            )
            state = ServiceState(config)
            for _ in range(config.epochs):
                engine.run_epoch(state)
            rows.append(_row(framework, label, rate, state))
    return rows


def _row(
    framework: str, load: str, rate_hz: float, state: ServiceState
) -> TrafficRow:
    stats = state.stats
    met = stats.total("sla_met")
    missed = stats.total("sla_missed")
    wait_p95 = max(
        stats.cls(name).wait.quantile_s(0.95) for name in stats.classes
    )
    sojourn_p99 = max(
        stats.cls(name).sojourn.quantile_s(0.99) for name in stats.classes
    )
    return TrafficRow(
        framework=framework,
        load=load,
        rate_hz=rate_hz,
        arrived=stats.total("arrived"),
        completed=stats.total("completed"),
        drop_fraction=stats.rate_fraction("rejected")
        + stats.rate_fraction("dropped"),
        sla_miss_fraction=missed / (met + missed) if met + missed else 0.0,
        shed_fraction=stats.rate_fraction("shed"),
        utilization_fraction=stats.utilization_fraction,
        wait_p95_s=wait_p95,
        sojourn_p99_s=sojourn_p99,
        peak_psn_pct=stats.peak_psn_pct,
    )


def print_traffic(rows: Sequence[TrafficRow]) -> None:
    """Print the traffic comparison table."""
    print("Service traffic under light / saturation / overload")
    print(
        f"{'framework':>10s} {'load':>10s} {'rate[Hz]':>8s} {'arr':>5s} "
        f"{'compl':>5s} {'drop':>6s} {'miss':>6s} {'shed':>6s} "
        f"{'util':>5s} {'waitP95':>8s} {'sojP99':>7s} {'peak[%]':>7s}"
    )
    for r in rows:
        print(
            f"{r.framework:>10s} {r.load:>10s} {r.rate_hz:>8.1f} "
            f"{r.arrived:>5d} {r.completed:>5d} {r.drop_fraction:>6.3f} "
            f"{r.sla_miss_fraction:>6.3f} {r.shed_fraction:>6.3f} "
            f"{r.utilization_fraction:>5.2f} {r.wait_p95_s:>8.3f} "
            f"{r.sojourn_p99_s:>7.3f} {r.peak_psn_pct:>7.2f}"
        )


def traffic_table(rows: Sequence[TrafficRow]) -> Dict[str, Dict[str, float]]:
    """The sweep as nested JSON-friendly dicts (keyed fw/load)."""
    return {
        f"{r.framework}/{r.load}": {
            "arrived": float(r.arrived),
            "completed": float(r.completed),
            "drop_fraction": r.drop_fraction,
            "peak_psn_pct": r.peak_psn_pct,
            "rate_hz": r.rate_hz,
            "shed_fraction": r.shed_fraction,
            "sla_miss_fraction": r.sla_miss_fraction,
            "sojourn_p99_s": r.sojourn_p99_s,
            "utilization_fraction": r.utilization_fraction,
            "wait_p95_s": r.wait_p95_s,
        }
        for r in rows
    }
