"""Experiment harness: regenerates every figure of the paper's evaluation.

* :mod:`repro.exp.frameworks` - the six compared (mapper, router)
  combinations: HM+XY, HM+ICON, HM+PANR, PARM+XY, PARM+ICON, PARM+PANR;
* :mod:`repro.exp.runner`     - one runtime simulation per framework and
  workload, with seed averaging;
* :mod:`repro.exp.figures`    - Fig. 1, 3a, 3b, 6, 7 and 8;
* :mod:`repro.exp.ablations`  - the buffer-threshold (B), DoP-cap,
  PARM-component, DsPB and checkpoint-period studies;
* :mod:`repro.exp.guardband`  - guardband/decap savings analysis;
* :mod:`repro.exp.faults`     - fault-intensity sweep (robustness of
  the frameworks under injected component faults);
* :mod:`repro.exp.report`     - the ``python -m repro`` one-shot report;
* :mod:`repro.exp.viz`        - ASCII chip/PSN renderers.
"""

from repro.exp.frameworks import FRAMEWORKS, Framework, framework
from repro.exp.runner import FrameworkResult, run_framework
from repro.exp import ablations
from repro.exp import faults
from repro.exp import figures
from repro.exp import guardband
from repro.exp import report
from repro.exp import viz

__all__ = [
    "FRAMEWORKS",
    "Framework",
    "framework",
    "FrameworkResult",
    "run_framework",
    "figures",
    "ablations",
    "faults",
    "guardband",
    "report",
    "viz",
]
