"""Guardband and decap savings enabled by PSN reduction (extension).

The paper's conclusion argues that PARM "can be used to minimize the
hardware overhead due to costly guardbanding techniques and
decapacitance circuits".  This module quantifies both claims with the
models already in the repository:

* **Frequency guardband**: a pipeline designed to run at ``f(Vdd)`` must
  actually be clocked at ``f(Vdd * (1 - PSN))`` to stay timing-safe
  under a worst-case droop of ``PSN`` percent (alpha-power law).  The
  difference is the guardband; lowering peak PSN recovers it.
* **Equivalent decap**: alternatively a designer can suppress noise in
  hardware by adding decoupling capacitance.  For the series-damped
  bump-L/decap-C tank of our PDN the anti-resonant peak impedance is
  ``L / (R C)``, so reducing droop by a factor ``k`` costs roughly ``k``
  times the decap area - this converts a PSN reduction into the on-die
  area a designer would otherwise have spent (verified against the AC
  solver in the tests).

A subtlety the analysis surfaces: because the alpha-power frequency
margin ``(Vdd - Vth)`` is thin at near-threshold voltages, a given
droop *percentage* costs more guardband at 0.4 V than at 0.8 V.
Comparisons should therefore be made at one operating point: what PARM
buys is the ability to run at NTC with a *small* droop, where HM-level
noise would be catastrophic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chip.dvfs import alpha_power_frequency
from repro.chip.technology import TechnologyNode, technology


@dataclass(frozen=True)
class GuardbandRow:
    """Guardband implied by one framework's measured peak PSN."""

    label: str
    vdd: float
    peak_psn_pct: float
    guardband_pct: float
    relative_frequency: float


def guardband_pct(
    peak_psn_pct: float, vdd: float, tech: Optional[TechnologyNode] = None
) -> float:
    """Clock-frequency guardband (percent) required to tolerate a
    worst-case supply droop of ``peak_psn_pct`` at ``vdd``.

    The safe clock is the alpha-power-law frequency at the drooped
    voltage; the guardband is the fractional frequency given up
    relative to the nominal-supply clock.
    """
    if not 0.0 <= peak_psn_pct < 100.0:
        raise ValueError("peak_psn_pct must be in [0, 100)")
    tech = tech or technology("7nm")
    v_droop = vdd * (1.0 - peak_psn_pct / 100.0)
    if v_droop <= tech.vth:
        return 100.0  # the droop eats the whole operating margin
    f_nominal = alpha_power_frequency(vdd, tech)
    f_safe = alpha_power_frequency(v_droop, tech)
    return 100.0 * (1.0 - f_safe / f_nominal)


def guardband_table(
    measurements: Dict[str, Tuple[float, float]],
    tech: Optional[TechnologyNode] = None,
) -> List[GuardbandRow]:
    """Guardband rows for measured (vdd, peak PSN %) per framework.

    Args:
        measurements: Mapping of label to ``(vdd, peak_psn_pct)`` -
            typically the dominant operating voltage and the Fig. 7 peak
            of each framework.
        tech: Technology node (default 7 nm).
    """
    rows = []
    for label, (vdd, psn) in measurements.items():
        gb = guardband_pct(psn, vdd, tech)
        rows.append(
            GuardbandRow(
                label=label,
                vdd=vdd,
                peak_psn_pct=psn,
                guardband_pct=gb,
                relative_frequency=1.0 - gb / 100.0,
            )
        )
    return rows


def equivalent_decap_factor(psn_reduction: float) -> float:
    """Decap area factor a designer would need for the same PSN cut.

    For the series-damped tank (bump R and L feeding the tile decap) the
    anti-resonant peak impedance is ``L / (R C)`` - linear in ``1/C`` -
    so lowering the droop by ``psn_reduction`` takes ``psn_reduction``
    times the decoupling capacitance (and its silicon area).
    """
    if psn_reduction < 1.0:
        raise ValueError("psn_reduction must be >= 1 (a reduction factor)")
    return psn_reduction


def print_guardband(rows: List[GuardbandRow]) -> None:
    print("Extension: frequency guardband implied by peak PSN (7 nm)")
    print(
        f"{'framework':>12s} {'Vdd':>5s} {'peak PSN %':>11s} "
        f"{'guardband %':>12s} {'rel. clock':>11s}"
    )
    for r in rows:
        print(
            f"{r.label:>12s} {r.vdd:>4.1f}V {r.peak_psn_pct:>11.2f} "
            f"{r.guardband_pct:>12.1f} {r.relative_frequency:>11.3f}"
        )
