"""The six framework combinations of the paper's evaluation (Section 5.2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import HarmonicManager, ParmManager
from repro.core.base import ResourceManager
from repro.noc.routing import RoutingAlgorithm, make_routing


@dataclass(frozen=True)
class Framework:
    """One (mapper, router) combination, e.g. ``PARM+PANR``."""

    mapper: str
    router: str

    def __post_init__(self) -> None:
        if self.mapper not in ("HM", "PARM"):
            raise ValueError(f"unknown mapper {self.mapper!r}")
        make_routing(self.router)  # validates the router name

    @property
    def name(self) -> str:
        return f"{self.mapper}+{self.router.upper()}"

    def make_manager(self) -> ResourceManager:
        return ParmManager() if self.mapper == "PARM" else HarmonicManager()

    def make_routing(self) -> RoutingAlgorithm:
        return make_routing(self.router)


#: The evaluation's six combinations, in the paper's order.
FRAMEWORKS = (
    Framework("HM", "xy"),
    Framework("HM", "icon"),
    Framework("HM", "panr"),
    Framework("PARM", "xy"),
    Framework("PARM", "icon"),
    Framework("PARM", "panr"),
)


def framework(name: str) -> Framework:
    """Look up a framework by its evaluation name (e.g. ``"PARM+PANR"``)."""
    for fw in FRAMEWORKS:
        if fw.name.lower() == name.lower():
            return fw
    known = ", ".join(f.name for f in FRAMEWORKS)
    raise KeyError(f"unknown framework {name!r}; known: {known}")
