#!/usr/bin/env python
"""Fault injection: run one workload through a seeded fault campaign.

Samples a deterministic :class:`repro.faults.FaultCampaign` (sensor
faults, link/router failures, VRM droop episodes, permanent tile
failures), replays it against the PARM+PANR stack, and shows how the
runtime degrades gracefully: PANR falls back toward XY where sensor
readings cannot be trusted, unroutable applications are re-mapped around
dead links, and tile failures trigger checkpoint rollback plus
bounded-retry re-mapping instead of crashing the run.

Run:  python examples/fault_campaign.py
"""

import numpy as np

from repro.apps.workload import WorkloadType, generate_workload
from repro.chip import default_chip
from repro.core import ParmManager
from repro.faults import DEFAULT_FAULT_RATES, FaultCampaign
from repro.noc.routing import make_routing
from repro.runtime.export import app_records_csv
from repro.runtime.simulator import RuntimeSimulator


def main():
    chip = default_chip()
    workload = generate_workload(
        WorkloadType.MIXED, arrival_interval_s=0.1, n_apps=10, seed=1
    )
    horizon_s = workload[-1].arrival_s + 3.0

    # One seeded generator -> one reproducible fault schedule.  The same
    # seed at a lower intensity yields a strict subset of these events.
    rng = np.random.default_rng(42)
    campaign = FaultCampaign.sample(
        chip,
        horizon_s,
        rng,
        rates=DEFAULT_FAULT_RATES.scaled(3.0),
        intensity=1.0,
    )
    print(f"Sampled campaign: {len(campaign)} events over {horizon_s:.1f}s")
    for ev in campaign.events:
        window = "permanent" if ev.permanent else f"{ev.duration_s * 1e3:.0f}ms"
        print(
            f"  t={ev.time_s:7.3f}s  {ev.kind.value:<13s} "
            f"target={ev.target!r:<12} {window}"
        )

    sim = RuntimeSimulator(
        chip,
        ParmManager(),
        make_routing("panr"),
        faults=campaign,
        seed=7,
    )
    metrics = sim.run(workload)

    print(
        f"\nOutcome: {metrics.completed_count} completed "
        f"({metrics.degraded_count} after re-mapping), "
        f"{metrics.dropped_count} dropped, {metrics.failed_count} failed"
    )
    print(
        f"Faults injected: {metrics.fault_count}; successful re-maps: "
        f"{metrics.remap_count}; backoff retries: {metrics.remap_retry_count}"
    )
    print("\nPer-application lifecycle:")
    print(app_records_csv(metrics))


if __name__ == "__main__":
    main()
