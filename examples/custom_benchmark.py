#!/usr/bin/env python
"""Bring your own application: profile it, map it, and watch its flits.

Shows the full user-facing pipeline on a custom benchmark spec:

1. define a :class:`BenchmarkSpec` for an imaginary streaming workload;
2. run "offline profiling" (:func:`build_profile`) to get WCET/power at
   every (Vdd, DoP) operating point;
3. let PARM choose an operating point and placement;
4. replay the mapped application's traffic on the flit-level
   cycle-accurate NoC simulator under XY and PANR routing, and compare
   packet latencies and the traffic that crosses the noisy tiles.

Run:  python examples/custom_benchmark.py
"""

import numpy as np

from repro.apps.profiles import AppKind, BenchmarkSpec, build_profile
from repro.chip import default_chip
from repro.core import ParmManager
from repro.noc import ArrayNocEngine
from repro.noc.cycle import TrafficFlow
from repro.noc.routing import make_routing
from repro.pdn.fast import FastPsnModel
from repro.pdn.waveforms import TileLoad
from repro.runtime.state import ChipState

SPEC = BenchmarkSpec(
    name="videostream",
    kind=AppKind.COMMUNICATION,
    work_gcycles=0.5,
    serial_fraction=0.04,
    high_fraction=0.5,
    total_comm_mb=1600.0,
    seed=7,
)


def main():
    chip = default_chip()
    print(f"Custom benchmark: {SPEC.name} ({SPEC.kind.value}), "
          f"{SPEC.work_gcycles} Gcycles, {SPEC.total_comm_mb:.0f} MB of traffic")

    profile = build_profile(SPEC, tech=chip.tech)
    print("\nOffline profile (WCET ms / power W):")
    print("         " + "  ".join(f"DoP={d:<3d}" for d in (8, 16, 32)))
    for vdd in (0.4, 0.6, 0.8):
        cells = "  ".join(
            f"{profile.wcet_s(vdd, d) * 1e3:4.0f}/{profile.power_w(vdd, d):4.1f}"
            for d in (8, 16, 32)
        )
        print(f"  {vdd:.1f} V  {cells}")

    decision = ParmManager().try_map(profile, deadline_s=0.6, state=ChipState(chip))
    assert decision is not None, "mapping failed"
    print(f"\nPARM decision: Vdd={decision.vdd:.1f} V, DoP={decision.dop}, "
          f"power={decision.power_w:.1f} W")

    # Per-tile PSN of the mapped region (what PANR's sensors will see).
    graph = profile.graph(decision.dop)
    psn = np.zeros(chip.tile_count)
    model = FastPsnModel()
    power_model = chip.power_model
    tile_task = {tile: task for task, tile in decision.task_to_tile.items()}
    for domain in {chip.domains.domain_of(t) for t in decision.tiles}:
        loads = []
        for tile in chip.domains.tiles_of(domain):
            task_id = tile_task.get(tile)
            if task_id is None:
                loads.append(TileLoad.idle())
                continue
            task = graph.task(task_id)
            core = power_model.core_dynamic(
                task.activity_factor, decision.vdd
            ) + power_model.core_leakage(decision.vdd)
            loads.append(TileLoad(core, 0.05, task.activity_bin))
        peak, _ = model.domain_psn(decision.vdd, loads)
        for i, tile in enumerate(chip.domains.tiles_of(domain)):
            psn[tile] = peak[i]
    noisy = [t for t in np.argsort(psn)[-4:] if psn[t] > 0]
    print(f"noisiest tiles: {[int(t) for t in noisy]} "
          f"({', '.join(f'{psn[t]:.1f}%' for t in noisy)})")

    # Replay the APG's flows on the cycle-accurate NoC.
    freq = power_model.frequency(decision.vdd)
    cycles_total = profile.wcet_s(decision.vdd, decision.dop) * freq
    flows = []
    for src, dst, volume in graph.edges():
        a, b = decision.task_to_tile[src], decision.task_to_tile[dst]
        if a == b:
            continue
        flows.append(TrafficFlow(a, b, rate=(volume / 4.0) / cycles_total))
    print(f"\nReplaying {len(flows)} flows on the cycle-accurate NoC "
          f"(10000 cycles):")
    for routing_name in ("xy", "panr"):
        sim = ArrayNocEngine(
            chip.mesh, make_routing(routing_name), psn_pct=psn, seed=1
        )
        stats = sim.run(flows, 10000)
        crossing = sum(stats.router_flits_per_cycle[t] for t in noisy)
        print(
            f"  {routing_name.upper():>4s}: avg latency "
            f"{stats.avg_packet_latency:6.1f} cycles, p95 "
            f"{stats.p95_packet_latency:6.1f}, traffic through noisy tiles "
            f"{crossing:.2f} flits/cycle"
        )


if __name__ == "__main__":
    main()
