#!/usr/bin/env python
"""Quickstart: map one application with PARM and inspect the outcome.

Builds the paper's 60-tile 7 nm CMP, loads the offline profile of one
SPLASH-2 benchmark, asks PARM (Algorithm 1 + 2) for a Vdd / DoP /
placement decision, and evaluates the resulting power-supply noise with
the calibrated fast PSN model.

Run:  python examples/quickstart.py
"""

from repro.apps.suite import ProfileLibrary
from repro.chip import default_chip
from repro.core import HarmonicManager, ParmManager
from repro.exp.viz import render_placement
from repro.pdn.fast import FastPsnModel
from repro.pdn.waveforms import TileLoad
from repro.runtime.state import ChipState


def describe_decision(name, decision, chip, graph):
    print(f"\n{name}:")
    print(f"  Vdd = {decision.vdd:.1f} V, DoP = {decision.dop} threads, "
          f"estimated power = {decision.power_w:.1f} W")
    domains = sorted({chip.domains.domain_of(t) for t in decision.tiles})
    print(f"  occupies domains {domains}")
    print("  placement (H = high-activity task, L = low, . = dark):")
    for row in render_placement(chip, decision, graph).splitlines():
        print("    " + row)


def psn_of_decision(decision, chip, graph):
    """Worst per-tile peak PSN of the mapped application."""
    model = FastPsnModel()
    power_model = chip.power_model
    worst = 0.0
    used_domains = {chip.domains.domain_of(t) for t in decision.tiles}
    tile_task = {tile: task for task, tile in decision.task_to_tile.items()}
    for domain in used_domains:
        loads = []
        for tile in chip.domains.tiles_of(domain):
            task_id = tile_task.get(tile)
            if task_id is None:
                loads.append(TileLoad.idle())
                continue
            task = graph.task(task_id)
            core = power_model.core_dynamic(
                task.activity_factor, decision.vdd
            ) + power_model.core_leakage(decision.vdd)
            loads.append(TileLoad(core, 0.05, task.activity_bin))
        peak, _ = model.domain_psn(decision.vdd, loads)
        worst = max(worst, float(peak.max()))
    return worst


def main():
    chip = default_chip()
    print(f"Platform: {chip.mesh.width}x{chip.mesh.height} mesh at "
          f"{chip.tech.name}, DsPB = {chip.dark_silicon_budget_w:.0f} W, "
          f"Vdd ladder = {list(chip.vdd_ladder)}")

    library = ProfileLibrary()
    profile = library.get("fft")
    deadline_s = 0.5
    print(f"\nApplication: {profile.name} "
          f"({profile.kind.value}-intensive), deadline {deadline_s * 1e3:.0f} ms")
    print("Profiled WCET (ms) at the operating-point corners:")
    for vdd in (0.4, 0.8):
        for dop in (4, 32):
            print(f"  Vdd={vdd:.1f}V DoP={dop:>2d}: "
                  f"{profile.wcet_s(vdd, dop) * 1e3:7.1f} ms, "
                  f"{profile.power_w(vdd, dop):5.1f} W")

    for manager in (ParmManager(), HarmonicManager()):
        decision = manager.try_map(profile, deadline_s, ChipState(chip))
        if decision is None:
            print(f"\n{manager.name}: no feasible mapping")
            continue
        graph = profile.graph(decision.dop)
        describe_decision(manager.name, decision, chip, graph)
        peak = psn_of_decision(decision, chip, graph)
        margin = "EXCEEDS" if peak > 5.0 else "within"
        print(f"  worst peak PSN = {peak:.2f} % of Vdd "
              f"({margin} the 5 % voltage-emergency margin)")


if __name__ == "__main__":
    main()
