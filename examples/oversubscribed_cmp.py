#!/usr/bin/env python
"""Over-subscribed CMP: the Fig. 8 scenario with per-application detail.

Streams a 12-application mixed workload into the chip every 100 ms -
faster than it can drain - under two frameworks (HM+XY, PARM+PANR) and
prints the lifecycle of every application: when it was mapped, at which
operating point, how many voltage emergencies hit it, and whether it
completed before its deadline or was dropped.

Run:  python examples/oversubscribed_cmp.py
"""

from repro.apps.suite import ProfileLibrary
from repro.apps.workload import WorkloadType, generate_workload
from repro.chip import default_chip
from repro.exp.frameworks import framework
from repro.exp.viz import render_psn_timeline
from repro.runtime.simulator import RuntimeSimulator


def show_run(name, metrics):
    print(f"\n=== {name} ===")
    header = (
        f"{'app':>4s} {'bench':>14s} {'arrive':>7s} {'mapped':>7s} "
        f"{'Vdd':>5s} {'DoP':>4s} {'VEs':>5s} {'finish':>8s} {'status':>9s}"
    )
    print(header)
    for rec in metrics.apps.values():
        mapped = f"{rec.mapped_s:6.2f}s" if rec.mapped_s is not None else "      -"
        vdd = f"{rec.vdd:.1f}V" if rec.vdd is not None else "   -"
        dop = f"{rec.dop}" if rec.dop is not None else "-"
        if rec.completed:
            finish = f"{rec.finished_s:7.2f}s"
            status = "ok" if rec.met_deadline else "late"
        elif rec.dropped:
            finish, status = "       -", "DROPPED"
        else:
            finish, status = "       -", "unfinished"
        print(
            f"{rec.app_id:>4d} {rec.name:>14s} {rec.arrival_s:6.2f}s "
            f"{mapped} {vdd:>5s} {dop:>4s} {rec.ve_count:>5d} {finish} "
            f"{status:>9s}"
        )
    print(
        f"completed {metrics.completed_count}, dropped "
        f"{metrics.dropped_count}, peak PSN {metrics.peak_psn_pct:.2f} %, "
        f"avg PSN {metrics.avg_psn_pct:.2f} %, VEs {metrics.total_ve_count}"
    )
    print("chip peak PSN over time ('!' rows exceed the 5 % VE margin):")
    print(render_psn_timeline(metrics.trace))


def main():
    chip = default_chip()
    library = ProfileLibrary()
    workload = generate_workload(
        WorkloadType.MIXED, arrival_interval_s=0.1, n_apps=12,
        seed=42, library=library,
    )
    print(
        f"Workload: {len(workload)} mixed applications, one every 100 ms; "
        f"deadlines {workload[0].relative_deadline_s * 1e3:.0f}-"
        f"{max(a.relative_deadline_s for a in workload) * 1e3:.0f} ms"
    )
    for fw_name in ("HM+XY", "PARM+PANR"):
        fw = framework(fw_name)
        sim = RuntimeSimulator(
            chip, fw.make_manager(), fw.make_routing(), seed=7,
            record_trace=True,
        )
        show_run(fw_name, sim.run(workload))


if __name__ == "__main__":
    main()
