#!/usr/bin/env python
"""PSN characterisation with the transient (SPICE-level) PDN model.

Reproduces the paper's Section 3 observations from first principles,
using the MNA circuit solver on the Fig. 2 power-delivery network:

1. peak PSN grows with technology scaling (Fig. 1);
2. peak PSN is proportional to the supply voltage, for both
   communication- and compute-intensive workloads (Fig. 3a);
3. High-Low activity pairs interfere more than High-High / Low-Low
   pairs, and 2-hop separation interferes less than 1-hop (Fig. 3b).

It also shows the raw voltage waveform of a noisy domain, which is what
the on-die sensors of [16] would sample.

Run:  python examples/psn_characterization.py
"""

import numpy as np

from repro.chip.power import PowerModel
from repro.chip.technology import technology
from repro.exp import figures
from repro.pdn.builder import DomainPdnBuilder
from repro.pdn.transient import apply_phase_convention, clock_burst_scale
from repro.pdn.waveforms import ActivityBin, CurrentWaveform, TileLoad


def waveform_demo():
    """Simulate one noisy domain and print an ASCII voltage trace."""
    tech = technology("7nm")
    power = PowerModel(tech)
    vdd = 0.8
    builder = DomainPdnBuilder(tech)
    loads = apply_phase_convention(
        [
            TileLoad(power.core_dynamic(0.7, vdd), 0.2, ActivityBin.HIGH),
            TileLoad(power.core_dynamic(0.25, vdd), 0.2, ActivityBin.LOW),
            TileLoad(power.core_dynamic(0.65, vdd), 0.2, ActivityBin.HIGH),
            TileLoad(power.core_dynamic(0.2, vdd), 0.2, ActivityBin.LOW),
        ],
        burst_scale=clock_burst_scale(vdd, tech),
    )
    circuit = builder.build(vdd, [CurrentWaveform(l, vdd) for l in loads])
    result = circuit.transient(duration=60e-9, dt=50e-12)
    v = result.voltage("tile1")  # the Low-activity victim tile

    print(f"\nSupply rail of a Low-activity tile next to a High-activity "
          f"neighbour (Vdd = {vdd} V):")
    print(f"  tank resonance: {builder.resonance_hz() / 1e6:.0f} MHz")
    samples = v[:: len(v) // 60][:60]
    vmin, vmax = samples.min(), samples.max()
    for level in np.linspace(vmax, vmin, 9):
        row = "".join(
            "*" if abs(s - level) <= (vmax - vmin) / 16 else " "
            for s in samples
        )
        print(f"  {level:7.4f} V |{row}|")
    droop = (vdd - v.min()) / vdd * 100
    print(f"  worst droop: {droop:.2f} % of Vdd "
          f"({'a voltage emergency' if droop > 5 else 'within margin'})")


def main():
    print("=" * 68)
    figures.print_fig1()
    print()
    figures.print_fig3a()
    print()
    figures.print_fig3b()
    waveform_demo()


if __name__ == "__main__":
    main()
