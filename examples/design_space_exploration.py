#!/usr/bin/env python
"""Design-space exploration: PARM across platforms the paper didn't test.

Every model in the repository is parameterised, so the framework runs on
platforms beyond the paper's 10x6 / 7 nm / 65 W point.  This example
sweeps two axes:

1. **technology node** (14 nm / 10 nm / 7 nm) at the paper's mesh - how
   does PSN-aware management pay off as scaling makes noise worse?
2. **mesh size** (6x4 / 10x6 / 12x8, with the DsPB scaled per tile) -
   does the advantage hold on smaller and larger chips?

Caveats worth knowing: the fast PSN kernels shipped in
``repro.pdn.fast`` are calibrated at 7 nm (re-run
``python -m repro.pdn.calibrate`` with another node for exact numbers at
14/10 nm - trends shown here come from the power model and are robust),
and on the 6x4 chip the scaled ~26 W budget cannot fit HM's fixed
nominal-Vdd mappings at all, so HM completes nothing there - PARM's
Vdd/DoP adaptation is what makes the small chip usable.

Run:  python examples/design_space_exploration.py
"""

from repro.apps.suite import ProfileLibrary
from repro.apps.workload import WorkloadType, generate_workload
from repro.chip.cmp import ChipDescription
from repro.chip.dvfs import VddLadder
from repro.chip.mesh import MeshGeometry
from repro.chip.technology import technology
from repro.core import HarmonicManager, ParmManager
from repro.noc.routing import make_routing
from repro.runtime.simulator import RuntimeSimulator


def run_platform(chip, library, n_apps=10, seed=3):
    workload = generate_workload(
        WorkloadType.MIXED,
        arrival_interval_s=0.1,
        n_apps=n_apps,
        seed=seed,
        library=library,
        deadline_slack_range=(30.0, 30.0),
    )
    out = {}
    for label, manager, routing in (
        ("PARM+PANR", ParmManager(), "panr"),
        ("HM+XY", HarmonicManager(), "xy"),
    ):
        sim = RuntimeSimulator(chip, manager, make_routing(routing), seed=7)
        out[label] = sim.run(workload)
    return out


def main():
    print("=" * 72)
    print("Axis 1: technology node (10x6 mesh, budget 65 W)")
    print(
        f"{'node':>6s} {'framework':>10s} {'total':>7s} {'done':>5s} "
        f"{'peak PSN %':>11s} {'VEs':>6s}"
    )
    for node in ("14nm", "10nm", "7nm"):
        tech = technology(node)
        ladder = VddLadder.from_range(tech.vdd_ntc, tech.vdd_nominal, 0.1)
        chip = ChipDescription(
            mesh=MeshGeometry(10, 6),
            tech=tech,
            vdd_ladder=ladder,
            dark_silicon_budget_w=65.0,
        )
        library = ProfileLibrary(tech=tech, vdds=tuple(ladder))
        for label, m in run_platform(chip, library).items():
            print(
                f"{node:>6s} {label:>10s} {m.total_time_s:>6.2f}s "
                f"{m.completed_count:>5d} {m.peak_psn_pct:>11.2f} "
                f"{m.total_ve_count:>6d}"
            )

    print()
    print("Axis 2: mesh size at 7 nm (budget scaled ~1.08 W per tile)")
    print(
        f"{'mesh':>6s} {'framework':>10s} {'total':>7s} {'done':>5s} "
        f"{'peak PSN %':>11s} {'VEs':>6s}"
    )
    library = ProfileLibrary()
    for width, height in ((6, 4), (10, 6), (12, 8)):
        chip = ChipDescription(
            mesh=MeshGeometry(width, height),
            tech=technology("7nm"),
            vdd_ladder=VddLadder.paper_default(),
            dark_silicon_budget_w=round(65.0 / 60 * width * height, 1),
        )
        for label, m in run_platform(chip, library).items():
            print(
                f"{width}x{height:<3d} {label:>10s} {m.total_time_s:>6.2f}s "
                f"{m.completed_count:>5d} {m.peak_psn_pct:>11.2f} "
                f"{m.total_ve_count:>6d}"
            )


if __name__ == "__main__":
    main()
